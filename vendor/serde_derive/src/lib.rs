//! Offline stand-in for `serde_derive`.
//!
//! Derives the shim `serde::Serialize` / `serde::Deserialize` traits
//! (JSON-`Value`-based, not the real serde data model) for named-field
//! structs. Parses the item token stream directly — no `syn`/`quote` — and
//! emits the impl by formatting source text.
//!
//! Supported `#[serde(...)]` attributes, matching this workspace's usage:
//! container-level `deny_unknown_fields`; field-level `default` and
//! `default = "path"`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let s = parse_struct(input);
    let mut pushes = String::new();
    for f in &s.fields {
        pushes.push_str(&format!(
            "fields.push((\"{name}\".to_string(), ::serde::Serialize::to_json_value(&self.{name})));\n",
            name = f.name
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> ::serde::value::Value {{\n\
                 let mut fields: Vec<(String, ::serde::value::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::value::Value::Object(fields)\n\
             }}\n\
         }}",
        name = s.name,
    )
    .parse()
    .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let s = parse_struct(input);

    let mut inits = String::new();
    for f in &s.fields {
        let absent = match &f.default {
            Default_::None => format!(
                "<{ty} as ::serde::Deserialize>::missing_field(\"{name}\")?",
                ty = f.ty,
                name = f.name
            ),
            Default_::Trait => "::std::default::Default::default()".to_string(),
            Default_::Path(p) => format!("{p}()"),
        };
        inits.push_str(&format!(
            "{name}: match pairs.iter().find(|(k, _)| k.as_str() == \"{name}\") {{\n\
                 Some((_, v)) => <{ty} as ::serde::Deserialize>::from_json_value(v)\n\
                     .map_err(|e| e.in_field(\"{name}\"))?,\n\
                 None => {absent},\n\
             }},\n",
            name = f.name,
            ty = f.ty,
        ));
    }

    let deny = if s.deny_unknown_fields {
        let known: Vec<String> = s.fields.iter().map(|f| format!("\"{}\"", f.name)).collect();
        format!(
            "for (k, _) in pairs.iter() {{\n\
                 if ![{known}].contains(&k.as_str()) {{\n\
                     return Err(::serde::value::Error::custom(format!(\n\
                         \"unknown field `{{k}}` in {name}\")));\n\
                 }}\n\
             }}\n",
            known = known.join(", "),
            name = s.name,
        )
    } else {
        String::new()
    };

    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_json_value(v: &::serde::value::Value) -> Result<Self, ::serde::value::Error> {{\n\
                 let pairs = match v {{\n\
                     ::serde::value::Value::Object(pairs) => pairs,\n\
                     other => return Err(::serde::value::Error::custom(format!(\n\
                         \"expected object for {name}, got {{}}\", other.kind()))),\n\
                 }};\n\
                 {deny}\
                 Ok({name} {{\n\
                     {inits}\
                 }})\n\
             }}\n\
         }}",
        name = s.name,
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl failed to parse")
}

enum Default_ {
    /// No attribute: required field (Option<T> overrides `missing_field`).
    None,
    /// `#[serde(default)]`.
    Trait,
    /// `#[serde(default = "path")]`.
    Path(String),
}

struct Field {
    name: String,
    ty: String,
    default: Default_,
}

struct Struct {
    name: String,
    deny_unknown_fields: bool,
    fields: Vec<Field>,
}

/// Parse a named-field struct item. Anything else (enums, tuple structs,
/// generics) is out of scope for this shim and panics with a clear message.
fn parse_struct(input: TokenStream) -> Struct {
    let mut toks = input.into_iter().peekable();
    let mut deny_unknown_fields = false;

    // Container attributes and visibility, then `struct Name`.
    let name = loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.next() {
                    for item in serde_attr_items(&g.stream()) {
                        if item == "deny_unknown_fields" {
                            deny_unknown_fields = true;
                        }
                    }
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                // Consume a possible `(crate)` restriction.
                if let Some(TokenTree::Group(_)) = toks.peek() {
                    toks.next();
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "struct" => match toks.next() {
                Some(TokenTree::Ident(n)) => break n.to_string(),
                other => panic!("serde_derive: expected struct name, got {other:?}"),
            },
            Some(TokenTree::Ident(_)) => {} // e.g. `union` would fail below
            other => panic!("serde_derive: unexpected token before struct body: {other:?}"),
        }
    };

    // The field block. A `<` here would mean generics, which we don't support.
    let body = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde_derive shim supports only non-generic named-field structs; \
             `{name}` has unexpected token {other:?}"
        ),
    };

    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Field attributes (including doc comments, which arrive as
        // `#[doc = "..."]`).
        let mut default = Default_::None;
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.next() {
                        for item in serde_attr_items(&g.stream()) {
                            if item == "default" {
                                default = Default_::Trait;
                            } else if let Some(p) = item.strip_prefix("default=") {
                                default = Default_::Path(p.trim_matches('"').to_string());
                            }
                        }
                    }
                }
                _ => break,
            }
        }

        // Visibility.
        if let Some(TokenTree::Ident(i)) = toks.peek() {
            if i.to_string() == "pub" {
                toks.next();
                if let Some(TokenTree::Group(_)) = toks.peek() {
                    toks.next();
                }
            }
        }

        let fname = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name in {name}, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after {name}.{fname}, got {other:?}"),
        }

        // Type tokens up to the next top-level comma (angle brackets nest;
        // parens/brackets are atomic groups in the token tree).
        let mut depth = 0i32;
        let mut ty_toks: Vec<TokenTree> = Vec::new();
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    toks.next();
                    break;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                None => break,
                _ => {}
            }
            ty_toks.push(toks.next().unwrap());
        }
        let ty = ty_toks.into_iter().collect::<TokenStream>().to_string();

        fields.push(Field {
            name: fname,
            ty,
            default,
        });
    }

    Struct {
        name,
        deny_unknown_fields,
        fields,
    }
}

/// If an attribute body (`serde(...)` / `doc = ...`) is a serde attribute,
/// return its comma-separated items with whitespace stripped (so
/// `default = "f"` becomes `default="f"`). Non-serde attributes yield none.
fn serde_attr_items(attr_body: &TokenStream) -> Vec<String> {
    let mut toks = attr_body.clone().into_iter();
    match toks.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return Vec::new(),
    }
    let Some(TokenTree::Group(args)) = toks.next() else {
        return Vec::new();
    };
    let mut items = Vec::new();
    let mut cur = String::new();
    for t in args.stream() {
        match t {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                if !cur.is_empty() {
                    items.push(std::mem::take(&mut cur));
                }
            }
            other => cur.push_str(&other.to_string()),
        }
    }
    if !cur.is_empty() {
        items.push(cur);
    }
    items
}
