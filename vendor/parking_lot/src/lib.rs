//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (`lock()`/`read()`/`write()` return guards directly, not `Result`s). A
//! poisoned std lock means a thread panicked while holding it; matching
//! parking_lot, we ignore the poison and hand out the guard anyway — the
//! panic is already propagating elsewhere.

use std::sync::{self, LockResult};

/// Recover the guard from a possibly-poisoned std lock result.
fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn survives_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
