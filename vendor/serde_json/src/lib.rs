//! Offline stand-in for `serde_json`: a recursive-descent JSON parser and
//! compact/pretty printers over the `serde` shim's [`Value`] tree.

pub use serde::value::{Error, Number, Value};
use serde::{Deserialize, Serialize};

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Compact single-line JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render_compact())
}

/// Two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render_pretty())
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    T::from_json_value(&v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::custom(format!("{msg} at line {line} column {col}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are out of scope for this shim;
                            // BMP scalars cover the workspace's data.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u scalar"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_value() {
        let text = r#"{"a": 1, "b": [true, null, -2.5], "s": "x\"y\n", "u": 18446744073709551615}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v.get("a"), Some(&Value::Number(Number::U64(1))));
        assert_eq!(
            v.get("u"),
            Some(&Value::Number(Number::U64(u64::MAX))),
            "u64::MAX survives without float truncation"
        );
        let reprinted = v.render_compact();
        let v2: Value = from_str(&reprinted).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn float_roundtrip() {
        let v = Value::Number(Number::F64(0.1 + 0.2));
        let text = v.render_compact();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back, "shortest float formatting round-trips exactly");
    }

    #[test]
    fn pretty_printing_shape() {
        let v = Value::Object(vec![
            ("k".to_string(), Value::Array(vec![Value::Bool(true)])),
            ("empty".to_string(), Value::Object(vec![])),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"k\": [\n    true\n  ],\n  \"empty\": {}\n}");
    }

    #[test]
    fn errors_carry_position() {
        let e = from_str::<Value>("{\"a\": }").unwrap_err();
        assert!(e.to_string().contains("column 7"), "got: {e}");
    }

    #[test]
    fn unicode_and_escapes() {
        let v: Value = from_str(r#""café — ok""#).unwrap();
        assert_eq!(v, Value::String("café — ok".to_string()));
    }
}
