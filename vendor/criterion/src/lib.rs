//! Offline stand-in for `criterion`.
//!
//! Supports the group-based API this workspace's benches use
//! (`benchmark_group` / `sample_size` / `throughput` / `bench_function` /
//! `finish`, plus the `criterion_group!`/`criterion_main!` macros) and
//! reports mean wall-clock time per iteration — no statistics, plots, or
//! baseline comparisons.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How to express per-iteration throughput alongside the timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark name, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl From<BenchmarkId> for BenchmarkId2 {
    fn from(b: BenchmarkId) -> Self {
        BenchmarkId2(b.id)
    }
}

impl From<&str> for BenchmarkId2 {
    fn from(s: &str) -> Self {
        BenchmarkId2(s.to_string())
    }
}

impl From<String> for BenchmarkId2 {
    fn from(s: String) -> Self {
        BenchmarkId2(s)
    }
}

/// Internal unified id so `bench_function` accepts both `&str` and
/// [`BenchmarkId`], like the real crate's `IntoBenchmarkId`.
pub struct BenchmarkId2(String);

/// Runs closures under timing.
pub struct Bencher {
    samples: u64,
    /// Mean seconds per iteration, filled in by `iter`.
    mean_s: f64,
}

impl Bencher {
    /// Time `routine`: one warm-up call, then `samples` timed iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean_s = start.elapsed().as_secs_f64() / self.samples as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<I: Into<BenchmarkId2>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into().0;
        let mut b = Bencher {
            samples: self.samples,
            mean_s: 0.0,
        };
        f(&mut b);
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if b.mean_s > 0.0 => {
                format!("  {:.1} MiB/s", n as f64 / b.mean_s / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) if b.mean_s > 0.0 => {
                format!("  {:.3} Melem/s", n as f64 / b.mean_s / 1e6)
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: {}{}",
            self.name,
            id,
            format_time(Duration::from_secs_f64(b.mean_s)),
            rate
        );
        self
    }

    pub fn finish(&mut self) {}
}

fn format_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.benchmark_group(name.to_string())
            .bench_function(name, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        let mut runs = 0u64;
        g.bench_function(BenchmarkId::from_parameter("count"), |b| {
            b.iter(|| runs += 1)
        });
        g.finish();
        // 1 warm-up + 3 timed iterations.
        assert_eq!(runs, 4);
    }
}
