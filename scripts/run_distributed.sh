#!/usr/bin/env bash
# Launch a real 3-process cloud-bursting run on localhost — one head and two
# workers over TCP — and verify the distributed answer is byte-identical to
# the single-process runtime on the same dataset and split.
#
# Usage: scripts/run_distributed.sh [port]
set -euo pipefail

PORT="${1:-4817}"
ADDR="127.0.0.1:${PORT}"
WORKDIR="$(mktemp -d /tmp/cb-distributed.XXXXXX)"
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$WORKDIR"' EXIT

cd "$(dirname "$0")/.."
cargo build --release -p cloudburst-cli
CB=target/release/cloudburst

echo "== generating corpus in $WORKDIR"
"$CB" generate --kind words --out "$WORKDIR/corpus" \
  --files 6 --per-file 20000 --per-chunk 2000 --vocab 2000 --seed 2011
"$CB" organize --store "$WORKDIR/corpus" --unit-bytes 8 --chunk-bytes 16000 \
  --out "$WORKDIR/corpus.grix"

echo "== single-process baseline"
"$CB" run --app wordcount --index "$WORKDIR/corpus.grix" \
  --data "$WORKDIR/corpus" --data2 "$WORKDIR/corpus" --frac-local 0.5 \
  --robj-out "$WORKDIR/single.robj" > "$WORKDIR/single.log"

echo "== head on $ADDR + 2 workers"
"$CB" head --listen "$ADDR" --app wordcount --index "$WORKDIR/corpus.grix" \
  --workers 2 --frac-local 0.5 --robj-out "$WORKDIR/dist.robj" \
  > "$WORKDIR/head.log" 2>&1 &
HEAD_PID=$!

for cluster in 0 1; do
  "$CB" worker --connect "$ADDR" --app wordcount \
    --index "$WORKDIR/corpus.grix" \
    --data "$WORKDIR/corpus" --data2 "$WORKDIR/corpus" --frac-local 0.5 \
    --cluster "$cluster" --cores 2 > "$WORKDIR/worker$cluster.log" 2>&1 &
done

wait "$HEAD_PID"
wait

echo "== head report"
cat "$WORKDIR/head.log"

cmp "$WORKDIR/single.robj" "$WORKDIR/dist.robj"
echo "OK: distributed result is byte-identical to the single-process run"
