//! End-to-end integration: the full stack (generators → stores → index →
//! head/master/slave runtime → global reduction) on realistic scenarios,
//! checked against the sequential oracle.

use cb_apps::gen::{PointMode, PointsSpec, WordsSpec};
use cb_apps::kmeans::{next_centroids, Centroids, KMeansApp};
use cb_apps::scenario::{build_hybrid, HybridOpts, ThrottleOpts, CLOUD, LOCAL};
use cb_apps::wordcount::{wordcount_reference, WordCountApp};
use cloudburst_core::api::run_sequential;
use cloudburst_core::config::RuntimeConfig;
use cloudburst_core::runtime::run;

fn points_spec() -> PointsSpec {
    PointsSpec {
        n_files: 8,
        points_per_file: 3_000,
        points_per_chunk: 500,
        dim: 4,
        seed: 1234,
        mode: PointMode::Blobs {
            centers: 5,
            spread: 0.4,
        },
    }
}

fn words_spec() -> WordsSpec {
    WordsSpec {
        vocabulary: 2_000,
        n_files: 6,
        words_per_file: 20_000,
        words_per_chunk: 4_000,
        seed: 99,
    }
}

/// One full k-means pass distributed across a hybrid deployment equals the
/// same pass run sequentially on the same generated data.
#[test]
fn kmeans_pass_matches_oracle_across_skews() {
    let spec = points_spec();
    let app = KMeansApp::new(spec.dim, 5);
    let init = Centroids::new(
        spec.dim,
        (0..5)
            .flat_map(|c| PointsSpec::blob_center(spec.seed, c, spec.dim))
            .collect(),
    );

    for frac_local in [1.0, 0.5, 0.17, 0.0] {
        let layout = spec.layout();
        let env = build_hybrid(
            layout.clone(),
            spec.fill(),
            HybridOpts {
                frac_local,
                local_cores: 3,
                cloud_cores: 3,
                throttle: None,
            },
        )
        .unwrap();
        let out = run(
            &app,
            &init,
            &env.layout,
            &env.placement,
            &env.deployment,
            &RuntimeConfig::default(),
        )
        .unwrap();

        // Oracle over the identical generated chunks.
        let chunks: Vec<_> = layout
            .chunks
            .iter()
            .map(|c| {
                let mut buf = vec![0u8; c.len as usize];
                (spec.fill())(c, &mut buf);
                (*c, buf)
            })
            .collect();
        let oracle = run_sequential(&app, &init, chunks);

        for (a, b) in out.result.values().iter().zip(oracle.values()) {
            assert!(
                (a - b).abs() < 1e-9,
                "frac_local={frac_local}: distributed {a} vs oracle {b}"
            );
        }
        let next = next_centroids(&app, &out.result, &init);
        assert_eq!(next.k(), 5);
    }
}

/// Iterative k-means over the framework converges like the reference.
#[test]
fn kmeans_iterates_to_convergence_on_hybrid() {
    let spec = PointsSpec {
        n_files: 4,
        points_per_file: 2_000,
        points_per_chunk: 500,
        dim: 3,
        seed: 5,
        mode: PointMode::Blobs {
            centers: 3,
            spread: 0.05,
        },
    };
    let app = KMeansApp::new(3, 3);
    let env = build_hybrid(
        spec.layout(),
        spec.fill(),
        HybridOpts {
            frac_local: 0.5,
            local_cores: 2,
            cloud_cores: 2,
            throttle: None,
        },
    )
    .unwrap();

    // Init near (but off) each blob center: tests the iteration machinery
    // without fighting k-means' genuine local optima.
    let init_flat: Vec<f64> = (0..3)
        .flat_map(|c| {
            PointsSpec::blob_center(spec.seed, c, 3)
                .into_iter()
                .map(|x| x + 0.8)
        })
        .collect();
    let mut params = Centroids::new(3, init_flat);
    let mut last_shift = f64::INFINITY;
    for _ in 0..15 {
        let out = run(
            &app,
            &params,
            &env.layout,
            &env.placement,
            &env.deployment,
            &RuntimeConfig::default(),
        )
        .unwrap();
        let next = next_centroids(&app, &out.result, &params);
        last_shift = cb_apps::kmeans::centroid_shift(&params, &next);
        params = next;
        if last_shift < 1e-9 {
            break;
        }
    }
    assert!(
        last_shift < 1e-6,
        "k-means should converge on tight blobs, final shift {last_shift}"
    );
    // Each converged centroid sits near some blob center.
    for c in 0..3 {
        let got = params.centroid(c);
        let best = (0..3)
            .map(|b| {
                let center = PointsSpec::blob_center(spec.seed, b, 3);
                got.iter()
                    .zip(&center)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt()
            })
            .fold(f64::INFINITY, f64::min);
        assert!(best < 0.2, "centroid {c} far from every blob: {best}");
    }
}

/// Wordcount across a throttled (wall-clock realistic) hybrid environment.
#[test]
fn wordcount_on_throttled_hybrid_matches_reference() {
    let spec = words_spec();
    let layout = spec.layout();
    let env = build_hybrid(
        layout.clone(),
        spec.fill(),
        HybridOpts {
            frac_local: 0.33,
            local_cores: 2,
            cloud_cores: 2,
            throttle: Some(ThrottleOpts::scaled_default()),
        },
    )
    .unwrap();
    let out = run(
        &WordCountApp,
        &(),
        &env.layout,
        &env.placement,
        &env.deployment,
        &RuntimeConfig::default(),
    )
    .unwrap();

    let expect = wordcount_reference(&spec.all_words(&layout));
    assert_eq!(out.result.len(), expect.len());
    for (w, n) in &expect {
        let (_, cnt) = out.result.get(*w).unwrap();
        assert_eq!(cnt, *n, "word {w}");
    }

    // With throttling, remote retrieval actually costs wall time.
    let local = out.report.cluster("local").unwrap();
    let ec2 = out.report.cluster("EC2").unwrap();
    assert!(local.retrieval_s + ec2.retrieval_s > 0.0);
    assert!(out.report.total_s > 0.0);
}

/// The report's job accounting matches the pool exactly, under stealing.
#[test]
fn job_accounting_is_exact() {
    let spec = words_spec();
    let env = build_hybrid(
        spec.layout(),
        spec.fill(),
        HybridOpts {
            frac_local: 0.17,
            local_cores: 3,
            cloud_cores: 2,
            throttle: None,
        },
    )
    .unwrap();
    let n_jobs = env.layout.n_jobs() as u64;
    let out = run(
        &WordCountApp,
        &(),
        &env.layout,
        &env.placement,
        &env.deployment,
        &RuntimeConfig::default(),
    )
    .unwrap();
    assert_eq!(out.report.total_jobs(), n_jobs);
    // Bytes: every chunk read exactly once, attributed somewhere.
    let moved: u64 = out
        .report
        .clusters
        .iter()
        .map(|c| c.bytes_local + c.bytes_remote)
        .sum();
    assert_eq!(moved, env.layout.total_bytes());
    // Stolen jobs only where placement says the data was remote.
    for c in &out.report.clusters {
        if c.name == "EC2" {
            // 17% local placement: the cloud owns most data, steals little.
            assert!(c.jobs_stolen * 4 <= c.jobs_processed, "{c:?}");
        }
    }
}

/// Cluster-free sites still work: data at two sites, compute at one.
#[test]
fn compute_only_at_one_site_processes_remote_data() {
    let spec = words_spec();
    let layout = spec.layout();
    let env = build_hybrid(
        layout.clone(),
        spec.fill(),
        HybridOpts {
            frac_local: 0.5,
            local_cores: 4,
            cloud_cores: 0, // no cloud compute: all S3 data must be stolen
            throttle: None,
        },
    )
    .unwrap();
    let out = run(
        &WordCountApp,
        &(),
        &env.layout,
        &env.placement,
        &env.deployment,
        &RuntimeConfig::default(),
    )
    .unwrap();
    let expect = wordcount_reference(&spec.all_words(&layout));
    assert_eq!(out.result.len(), expect.len());
    let local = out.report.cluster("local").unwrap();
    assert_eq!(local.jobs_processed, layout.n_jobs() as u64);
    assert!(local.jobs_stolen > 0, "S3-homed jobs count as stolen");
}

/// Sabotaged dataset (file deleted from the cloud store) surfaces a
/// `JobsFailed` error naming the loss rather than a wrong answer or a hang.
#[test]
fn failure_injection_missing_remote_file() {
    let spec = words_spec();
    let env = build_hybrid(
        spec.layout(),
        spec.fill(),
        HybridOpts {
            frac_local: 0.5,
            local_cores: 2,
            cloud_cores: 2,
            throttle: None,
        },
    )
    .unwrap();
    // Remove a cloud-homed file.
    let victim = env
        .placement
        .files_at(CLOUD)
        .next()
        .map(|f| env.layout.file(f).name.clone())
        .unwrap();
    env.backing[&CLOUD].delete(&victim).unwrap();

    let err = run(
        &WordCountApp,
        &(),
        &env.layout,
        &env.placement,
        &env.deployment,
        &RuntimeConfig::default(),
    )
    .unwrap_err();
    match err {
        cloudburst_core::runtime::RuntimeError::JobsFailed {
            dead,
            unfinished,
            last_error,
        } => {
            assert!(
                !dead.is_empty() || unfinished > 0,
                "some chunks must be reported lost"
            );
            let msg = last_error.expect("a last error is recorded");
            assert!(msg.contains(&victim), "error names the missing file: {msg}");
        }
        other => panic!("expected JobsFailed, got {other:?}"),
    }
    let _ = LOCAL;
}
