//! Property-based tests of the discrete-event simulator and its substrate:
//! determinism, conservation laws, and directional (monotonicity) checks.

use cb_sim::calib::{self, App, NetConstants};
use cb_sim::model::simulate;
use cb_simnet::link::FairShareLink;
use cb_simnet::time::{SimDur, SimTime};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Fair-share link laws
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// All injected bytes are eventually delivered, none invented.
    #[test]
    fn link_conserves_bytes(
        capacity in 1.0f64..1e6,
        flows in prop::collection::vec((1u64..100_000, 0u64..5_000), 1..20),
    ) {
        let mut link = FairShareLink::with_capacity(capacity);
        let mut now = SimTime::ZERO;
        let mut total = 0u64;
        for (bytes, gap_ms) in &flows {
            now += SimDur::from_millis(*gap_ms);
            link.start_flow(now, *bytes, 0);
            total += bytes;
        }
        let mut completed = 0usize;
        let mut guard = 0;
        while let Some(t) = link.next_completion() {
            completed += link.poll_completed(t).len();
            guard += 1;
            prop_assert!(guard < 10_000, "completion loop did not converge");
        }
        prop_assert_eq!(completed, flows.len());
        prop_assert!((link.bytes_delivered() - total as f64).abs() < flows.len() as f64);
        prop_assert_eq!(link.active_flows(), 0);
    }

    /// Completion times are monotone in time (the next completion is never
    /// earlier than the poll that produced it).
    #[test]
    fn link_completions_monotone(
        flows in prop::collection::vec(1u64..10_000, 2..15),
    ) {
        let mut link = FairShareLink::with_capacity(1000.0);
        for (i, bytes) in flows.iter().enumerate() {
            link.start_flow(SimTime::ZERO, *bytes, i as u64);
        }
        let mut last = SimTime::ZERO;
        while let Some(t) = link.next_completion() {
            prop_assert!(t >= last, "completion time went backwards");
            last = t;
            link.poll_completed(t);
        }
    }

    /// A single flow's duration equals bytes / min(capacity, cap).
    #[test]
    fn link_single_flow_rate_exact(
        capacity in 1.0f64..1e6,
        cap in 1.0f64..1e6,
        bytes in 1u64..1_000_000,
    ) {
        let mut link = FairShareLink::with_capacity(capacity);
        link.start_flow_capped(SimTime::ZERO, bytes, cap, 0);
        let t = link.next_completion().unwrap();
        let expect = bytes as f64 / capacity.min(cap);
        let got = t.as_secs_f64();
        prop_assert!(
            (got - expect).abs() <= expect * 1e-6 + 1e-6,
            "expected {expect}, got {got}"
        );
    }

    /// Allocated rates never exceed capacity.
    #[test]
    fn link_rates_within_capacity(
        capacity in 10.0f64..1e5,
        caps in prop::collection::vec(1.0f64..1e5, 1..20),
    ) {
        let mut link = FairShareLink::with_capacity(capacity);
        let ids: Vec<_> = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| link.start_flow_capped(SimTime::ZERO, 1_000_000, c, i as u64))
            .collect();
        let total: f64 = ids.iter().filter_map(|&id| link.flow_rate(id)).sum();
        prop_assert!(total <= capacity * (1.0 + 1e-9), "total {total} > {capacity}");
        // And no flow exceeds its own cap.
        for (id, &cap) in ids.iter().zip(&caps) {
            let r = link.flow_rate(*id).unwrap();
            prop_assert!(r <= cap * (1.0 + 1e-9), "rate {r} > cap {cap}");
        }
    }
}

// ---------------------------------------------------------------------------
// Full-simulator laws (smaller case counts: each run is a full simulation)
// ---------------------------------------------------------------------------

fn quick_net() -> NetConstants {
    NetConstants::default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The simulator is a pure function of (params, seed).
    #[test]
    fn sim_deterministic(seed in 0u64..1_000, frac in 0.0f64..1.0) {
        let env = calib::EnvSpec {
            name: "prop".into(),
            frac_local: frac,
            local_cores: 4,
            cloud_cores: 4,
        };
        let p1 = calib::build_params(App::Knn, &env, &quick_net(), seed);
        let p2 = calib::build_params(App::Knn, &env, &quick_net(), seed);
        let a = simulate(p1).unwrap();
        let b = simulate(p2).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Conservation: jobs and bytes, for any placement fraction and seed.
    #[test]
    fn sim_conserves_jobs_and_bytes(seed in 0u64..1_000, frac in 0.0f64..1.0) {
        let env = calib::EnvSpec {
            name: "prop".into(),
            frac_local: frac,
            local_cores: 3,
            cloud_cores: 5,
        };
        let params = calib::build_params(App::PageRank, &env, &quick_net(), seed);
        let total_bytes = params.layout.total_bytes();
        let n_jobs = params.layout.n_jobs() as u64;
        let r = simulate(params).unwrap();
        prop_assert_eq!(r.total_jobs(), n_jobs);
        let moved: u64 = r.clusters.iter().map(|c| c.bytes_local + c.bytes_remote).sum();
        prop_assert_eq!(moved, total_bytes);
        // Breakdown identity per cluster.
        for c in &r.clusters {
            let sum = c.processing_s + c.retrieval_s + c.sync_s;
            prop_assert!((sum - c.wall_s).abs() < 1e-6);
            prop_assert!(c.wall_s <= r.total_s + 1e-9);
            prop_assert!(c.idle_end_s >= 0.0);
        }
    }

    /// More cores never slow a run down (same seed, same data).
    #[test]
    fn sim_monotone_in_cores(seed in 0u64..100) {
        let net = quick_net();
        let small = simulate(calib::build_fig4_params(App::KMeans, 4, &net, seed)).unwrap();
        let big = simulate(calib::build_fig4_params(App::KMeans, 8, &net, seed)).unwrap();
        prop_assert!(
            big.total_s < small.total_s,
            "8+8 cores ({}) not faster than 4+4 ({})",
            big.total_s,
            small.total_s
        );
    }
}

// ---------------------------------------------------------------------------
// Deterministic directional checks at paper scale
// ---------------------------------------------------------------------------

/// Retrieval burden shifts to the WAN as data skews to the cloud.
#[test]
fn local_retrieval_grows_with_skew() {
    let net = quick_net();
    let mut prev = 0.0;
    for frac in [0.5, 0.33, 0.17] {
        let env = calib::EnvSpec {
            name: format!("{frac}"),
            frac_local: frac,
            local_cores: 16,
            cloud_cores: 16,
        };
        let r = simulate(calib::build_params(App::Knn, &env, &net, 1)).unwrap();
        let retr = r.cluster("local").unwrap().retrieval_s;
        assert!(
            retr > prev,
            "local retrieval must grow as data moves to S3: {retr} after {prev}"
        );
        prev = retr;
    }
}

/// The cloud-bursting headline: hybrid slowdown stays moderate.
#[test]
fn average_slowdown_is_moderate() {
    let pct = cb_sim::experiments::average_slowdown_pct(&quick_net(), 2011);
    assert!(
        (2.0..35.0).contains(&pct),
        "average hybrid slowdown should be paper-like (got {pct}%)"
    );
}

/// Scalability headline: speedups per doubling are substantial.
#[test]
fn average_speedup_is_substantial() {
    let pct = cb_sim::experiments::average_speedup_pct(&quick_net(), 2011);
    assert!(
        (60.0..105.0).contains(&pct),
        "average speedup per doubling should be paper-like (got {pct}%)"
    );
}

/// Stealing pays off under skew. At 50/50 a tail-end steal over the slow
/// WAN can cost slightly more than idling — the paper saw the same effect
/// ("the total slowdown is smaller than the idle time ... the systems
/// cannot steal jobs; thus the idle time might be maximized and total job
/// processing time is minimized") — so near balance we only require
/// near-parity, while under skew stealing must win outright.
#[test]
fn stealing_pays_off_under_skew() {
    let net = quick_net();
    for (frac, max_ratio) in [(0.5, 1.05), (0.33, 1.0), (0.17, 0.95)] {
        let env = calib::EnvSpec {
            name: format!("{frac}"),
            frac_local: frac,
            local_cores: 16,
            cloud_cores: 16,
        };
        let on = simulate(calib::build_params(App::Knn, &env, &net, 1)).unwrap();
        let mut p = calib::build_params(App::Knn, &env, &net, 1);
        p.pool.allow_stealing = false;
        let off = simulate(p).unwrap();
        assert!(
            on.total_s <= off.total_s * max_ratio,
            "frac={frac}: stealing-on {} vs off {} (allowed ratio {max_ratio})",
            on.total_s,
            off.total_s
        );
    }
}
