//! Every evaluation application, distributed across the hybrid runtime,
//! must produce exactly what its sequential reference produces on the same
//! generated dataset.

use cb_apps::gen::{GraphSpec, PointMode, PointsSpec};
use cb_apps::knn::{knn_reference, KnnApp, KnnQuery};
use cb_apps::pagerank::{next_ranks, pagerank_reference_pass, rank_delta, PageRankApp, RankParams};
use cb_apps::scenario::{build_hybrid, HybridOpts};
use cloudburst_core::config::RuntimeConfig;
use cloudburst_core::runtime::run;
use std::sync::Arc;

#[test]
fn knn_distributed_equals_brute_force() {
    let spec = PointsSpec {
        n_files: 6,
        points_per_file: 2_000,
        points_per_chunk: 250,
        dim: 3,
        seed: 31,
        mode: PointMode::Uniform,
    };
    let layout = spec.layout();
    let app = KnnApp::new(spec.dim, 25);
    let query = KnnQuery {
        query: vec![0.5, 0.5, 0.5],
    };

    let env = build_hybrid(
        layout.clone(),
        spec.fill(),
        HybridOpts {
            frac_local: 0.33,
            local_cores: 3,
            cloud_cores: 3,
            throttle: None,
        },
    )
    .unwrap();
    let out = run(
        &app,
        &query,
        &env.layout,
        &env.placement,
        &env.deployment,
        &RuntimeConfig::default(),
    )
    .unwrap();
    let got = out.result.into_sorted();

    // Brute force with the same global ids.
    let mut ref_pts = Vec::new();
    for chunk in &layout.chunks {
        let flat = spec.chunk_points(chunk);
        for (i, p) in flat.chunks_exact(spec.dim).enumerate() {
            ref_pts.push((KnnApp::unit_id(chunk, spec.dim, i), p.to_vec()));
        }
    }
    let expect = knn_reference(&ref_pts, &query.query, 25);

    assert_eq!(got.len(), expect.len());
    for ((gd, gid), (ed, eid)) in got.iter().zip(&expect) {
        assert!((gd - ed).abs() < 1e-9, "distance mismatch: {gd} vs {ed}");
        assert_eq!(gid, eid, "neighbor id mismatch");
    }
}

#[test]
fn knn_result_is_independent_of_deployment_shape() {
    let spec = PointsSpec {
        n_files: 4,
        points_per_file: 1_500,
        points_per_chunk: 300,
        dim: 2,
        seed: 8,
        mode: PointMode::Uniform,
    };
    let app = KnnApp::new(2, 10);
    let query = KnnQuery {
        query: vec![0.25, 0.75],
    };

    let mut results = Vec::new();
    for (frac, lc, cc) in [(1.0, 4, 0), (0.0, 0, 4), (0.5, 2, 2), (0.25, 3, 1)] {
        let env = build_hybrid(
            spec.layout(),
            spec.fill(),
            HybridOpts {
                frac_local: frac,
                local_cores: lc,
                cloud_cores: cc,
                throttle: None,
            },
        )
        .unwrap();
        let out = run(
            &app,
            &query,
            &env.layout,
            &env.placement,
            &env.deployment,
            &RuntimeConfig::default(),
        )
        .unwrap();
        results.push(out.result.into_sorted());
    }
    for r in &results[1..] {
        assert_eq!(r, &results[0], "result depends on deployment shape");
    }
}

#[test]
fn pagerank_multipass_matches_reference() {
    let spec = GraphSpec {
        n_pages: 500,
        n_files: 6,
        edges_per_file: 5_000,
        edges_per_chunk: 1_000,
        seed: 17,
    };
    let layout = spec.layout();
    let app = PageRankApp::new(spec.n_pages);
    let out_degree = Arc::new(spec.out_degrees(&layout));
    let edges = spec.all_edges(&layout);

    let env = build_hybrid(
        layout,
        spec.fill(),
        HybridOpts {
            frac_local: 0.5,
            local_cores: 2,
            cloud_cores: 2,
            throttle: None,
        },
    )
    .unwrap();

    let mut dist_params = RankParams::uniform(Arc::clone(&out_degree));
    let mut ref_params = RankParams::uniform(Arc::clone(&out_degree));
    for pass in 0..5 {
        let out = run(
            &app,
            &dist_params,
            &env.layout,
            &env.placement,
            &env.deployment,
            &RuntimeConfig::default(),
        )
        .unwrap();
        let dist_ranks = next_ranks(&out.result, &dist_params);
        let ref_ranks = pagerank_reference_pass(&edges, &ref_params);
        let delta = rank_delta(&dist_ranks, &ref_ranks);
        assert!(delta < 1e-9, "pass {pass}: distributed diverged by {delta}");
        let total: f64 = dist_ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "pass {pass}: mass {total}");
        dist_params = RankParams {
            ranks: Arc::new(dist_ranks),
            out_degree: Arc::clone(&out_degree),
        };
        ref_params = RankParams {
            ranks: Arc::new(ref_ranks),
            out_degree: Arc::clone(&out_degree),
        };
    }
}

#[test]
fn pagerank_robj_size_reflects_graph() {
    let spec = GraphSpec {
        n_pages: 2_000,
        n_files: 2,
        edges_per_file: 4_000,
        edges_per_chunk: 1_000,
        seed: 3,
    };
    let layout = spec.layout();
    let app = PageRankApp::new(spec.n_pages);
    let out_degree = Arc::new(spec.out_degrees(&layout));
    let env = build_hybrid(
        layout,
        spec.fill(),
        HybridOpts {
            frac_local: 1.0,
            local_cores: 2,
            cloud_cores: 0,
            throttle: None,
        },
    )
    .unwrap();
    let params = RankParams::uniform(out_degree);
    let out = run(
        &app,
        &params,
        &env.layout,
        &env.placement,
        &env.deployment,
        &RuntimeConfig::default(),
    )
    .unwrap();
    // The paper's point: the pagerank robj is proportional to the page set.
    assert_eq!(out.report.robj_bytes, 2_000 * 8);
}
