//! Cross-API equivalence: the baseline MapReduce engine and the generalized
//! reduction API must compute the same answers on the same data — the
//! premise of the paper's Fig. 1 comparison.

use cb_apps::kmeans::{kmeans_reference_pass, next_centroids, Centroids, KMeansApp};
use cb_apps::mr_adapters::{KMeansMR, WordCountMR};
use cb_apps::wordcount::WordCountApp;
use cb_mapreduce::{run_mapreduce, MRConfig};
use cloudburst_core::api::{GRApp, ReductionObject};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Fold words through the GR API (split per split, then merge).
fn gr_wordcount(splits: &[Vec<u64>]) -> BTreeMap<u64, u64> {
    let app = WordCountApp;
    let mut acc = app.init(&());
    for split in splits {
        let mut r = app.init(&());
        for w in split {
            app.local_reduce(&(), &mut r, w);
        }
        acc.merge(r);
    }
    acc.iter().map(|(k, (_, n))| (k, n)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Wordcount: MR (with and without combiner) == GR == naive count.
    #[test]
    fn wordcount_equivalence(
        splits in prop::collection::vec(
            prop::collection::vec(0u64..100, 0..200),
            1..8
        ),
        mappers in 1usize..5,
        reducers in 1usize..5,
        use_combiner in any::<bool>(),
        flush in 1usize..64,
    ) {
        let mut naive: BTreeMap<u64, u64> = BTreeMap::new();
        for w in splits.iter().flatten() {
            *naive.entry(*w).or_insert(0) += 1;
        }

        let cfg = MRConfig { mappers, reducers, use_combiner, flush_threshold: flush };
        let (out, stats) = run_mapreduce(&WordCountMR, splits.clone(), &cfg);
        let mr: BTreeMap<u64, u64> = out.into_iter().collect();
        prop_assert_eq!(&mr, &naive);

        let gr = gr_wordcount(&splits);
        prop_assert_eq!(&gr, &naive);

        // The combiner may only shrink the shuffle, never grow it.
        prop_assert!(stats.pairs_shuffled <= stats.pairs_emitted);
        let total_words: u64 = splits.iter().map(|s| s.len() as u64).sum();
        prop_assert_eq!(stats.pairs_emitted, total_words);
    }

    /// One k-means pass: MR == GR == sequential reference, for random
    /// points and random initial centroids.
    #[test]
    fn kmeans_pass_equivalence(
        pts in prop::collection::vec(
            prop::collection::vec(-50.0f32..50.0, 2..3).prop_map(|mut v| { v.truncate(2); v }),
            4..120
        ),
        seedlike in 0u32..1000,
    ) {
        let dim = 2;
        let k = 3;
        // Derive distinct-ish centroids from the seed.
        let s = seedlike as f64;
        let init = Centroids::new(dim, vec![
            s % 10.0 - 5.0, (s * 0.7) % 10.0 - 5.0,
            (s * 1.3) % 40.0 - 20.0, (s * 2.1) % 40.0 - 20.0,
            (s * 3.7) % 90.0 - 45.0, (s * 0.3) % 90.0 - 45.0,
        ]);

        // Reference.
        let expect = kmeans_reference_pass(&pts, &init);

        // GR.
        let app = KMeansApp::new(dim, k);
        let mut robj = app.init(&init);
        for p in &pts {
            app.local_reduce(&init, &mut robj, p);
        }
        let gr_next = next_centroids(&app, &robj, &init);
        for (a, b) in gr_next.flat.iter().zip(&expect.flat) {
            prop_assert!((a - b).abs() < 1e-9, "GR {a} vs ref {b}");
        }

        // MR (with combiner).
        let splits: Vec<Vec<Vec<f32>>> = pts.chunks(7).map(|c| c.to_vec()).collect();
        let job = KMeansMR::new(init.clone());
        let cfg = MRConfig { use_combiner: true, flush_threshold: 3, ..Default::default() };
        let (out, _) = run_mapreduce(&job, splits, &cfg);
        for (c, centroid) in out {
            let e = expect.centroid(c as usize);
            for (a, b) in centroid.iter().zip(e) {
                prop_assert!((a - b).abs() < 1e-9, "MR cluster {c}: {a} vs {b}");
            }
        }
    }

    /// GR result is independent of how the input is split (the contract
    /// that lets the runtime schedule chunks anywhere).
    #[test]
    fn gr_split_invariance(
        words in prop::collection::vec(0u64..50, 0..300),
        pivots in prop::collection::vec(0usize..300, 0..4),
    ) {
        let whole = gr_wordcount(std::slice::from_ref(&words));

        let mut cuts: Vec<usize> = pivots.iter().map(|&p| p.min(words.len())).collect();
        cuts.push(0);
        cuts.push(words.len());
        cuts.sort_unstable();
        let splits: Vec<Vec<u64>> = cuts
            .windows(2)
            .map(|w| words[w[0]..w[1]].to_vec())
            .collect();
        let split_result = gr_wordcount(&splits);
        prop_assert_eq!(whole, split_result);
    }
}

/// Deterministic spot-check with a workload big enough to exercise the
/// combiner's flush path repeatedly.
#[test]
fn combiner_heavy_workload_equivalence() {
    let splits: Vec<Vec<u64>> = (0..16)
        .map(|s| {
            (0..10_000)
                .map(|i| ((i * 31 + s * 7) % 257) as u64)
                .collect()
        })
        .collect();
    let naive = {
        let mut m: BTreeMap<u64, u64> = BTreeMap::new();
        for w in splits.iter().flatten() {
            *m.entry(*w).or_insert(0) += 1;
        }
        m
    };
    for use_combiner in [false, true] {
        let cfg = MRConfig {
            mappers: 8,
            reducers: 8,
            use_combiner,
            flush_threshold: 512,
        };
        let (out, stats) = run_mapreduce(&WordCountMR, splits.clone(), &cfg);
        let got: BTreeMap<u64, u64> = out.into_iter().collect();
        assert_eq!(got, naive, "combiner={use_combiner}");
        if use_combiner {
            assert!(stats.pairs_shuffled < stats.pairs_emitted / 10);
            assert!(stats.peak_buffered_pairs < 160_000 / 10);
        }
    }
}
