//! Observability invariants, end to end: the event stream emitted by a
//! live run (and by the simulator) must be self-consistent — every fetch
//! paired with a terminal — and must *reconcile* with the `RunReport`, i.e.
//! the report is a pure derived view of the events (DESIGN.md §7). A
//! property test pins down that installing a sink never changes the
//! computation itself.

use cb_apps::gen::{PointMode, PointsSpec, WordsSpec};
use cb_apps::scenario::{build_hybrid, HybridOpts};
use cb_apps::selection::{BoxQuery, SelectionApp};
use cb_apps::wordcount::WordCountApp;
use cb_storage::layout::LocationId;
use cloudburst_core::config::{RuntimeConfig, SlaveKill};
use cloudburst_core::obs::{self, EventKind, EventRecord, RecordingSink, SinkHandle, TraceSummary};
use cloudburst_core::runtime::run;
use std::sync::Arc;

fn points_spec(seed: u64) -> PointsSpec {
    PointsSpec {
        n_files: 6,
        points_per_file: 2_000,
        points_per_chunk: 400,
        dim: 3,
        seed,
        mode: PointMode::Uniform,
    }
}

fn words_spec() -> WordsSpec {
    WordsSpec {
        vocabulary: 500,
        n_files: 4,
        words_per_file: 6_000,
        words_per_chunk: 1_500,
        seed: 42,
    }
}

/// Observed runtime config: a fresh recording sink plus the config that
/// carries it.
fn observed_cfg(base: RuntimeConfig) -> (Arc<RecordingSink>, RuntimeConfig) {
    let rec = RecordingSink::new();
    let cfg = RuntimeConfig {
        sink: SinkHandle::new(Arc::clone(&rec) as _),
        ..base
    };
    (rec, cfg)
}

/// A clean multi-cluster run with prefetching: events are well-formed and
/// every report aggregate is re-derivable from them, exactly.
#[test]
fn live_events_reconcile_with_report() {
    let spec = points_spec(7);
    let env = build_hybrid(
        spec.layout(),
        spec.fill(),
        HybridOpts {
            frac_local: 0.33,
            local_cores: 2,
            cloud_cores: 3,
            throttle: None,
        },
    )
    .unwrap();
    let (rec, cfg) = observed_cfg(RuntimeConfig {
        prefetch_depth: 2,
        ..Default::default()
    });
    let app = SelectionApp::new(spec.dim);
    let query = BoxQuery::new(vec![0.0; spec.dim], vec![0.4; spec.dim]);
    let out = run(
        &app,
        &query,
        &env.layout,
        &env.placement,
        &env.deployment,
        &cfg,
    )
    .unwrap();

    let events = rec.take();
    assert!(!events.is_empty());
    obs::check_invariants(&events).unwrap();
    let summary = TraceSummary::from_events(&events);
    summary.reconcile(&out.report, 1e-6).unwrap();
    assert_eq!(summary.total_jobs(), env.layout.n_jobs() as u64);
    assert_eq!(summary.robj_merges, out.report.clusters.len() as u64);
}

/// Faults + a kill schedule: retries, lease releases, and the kill are all
/// visible in the stream and still reconcile with the recovery stats.
#[test]
fn faulty_run_events_reconcile_with_recovery_stats() {
    use cb_storage::faults::{FaultMode, FlakyStore};

    let spec = points_spec(11);
    let mut env = build_hybrid(
        spec.layout(),
        spec.fill(),
        HybridOpts {
            frac_local: 0.5,
            local_cores: 2,
            cloud_cores: 2,
            throttle: None,
        },
    )
    .unwrap();
    let (rec, cfg) = observed_cfg(RuntimeConfig {
        prefetch_depth: 1,
        retrieval_retries: 3,
        retrieval_backoff: std::time::Duration::ZERO,
        kill_schedule: vec![SlaveKill {
            cluster: 1,
            slave: 0,
            after_jobs: 2,
        }],
        slave_failure_threshold: 1_000, // keep retirement out of the picture
        ..Default::default()
    });
    // Every GET fails twice per key before succeeding: absorbed by retries,
    // each attempt surfacing as a Retry event (plus the FlakyStore's own
    // FaultInjected when observed, as the CLI wires it).
    for site in [LocationId(0), LocationId(1)] {
        let sink = cfg.sink.clone();
        env.deployment.fabric.wrap_paths_to(site, |s| {
            let sink = sink.clone();
            Arc::new(
                FlakyStore::new(s, FaultMode::FirstNPerKey { n: 2 }, 13).with_observer(Arc::new(
                    move || sink.emit(None, None, EventKind::FaultInjected),
                )),
            )
        });
    }

    let app = SelectionApp::new(spec.dim);
    let query = BoxQuery::new(vec![0.0; spec.dim], vec![0.4; spec.dim]);
    let out = run(
        &app,
        &query,
        &env.layout,
        &env.placement,
        &env.deployment,
        &cfg,
    )
    .unwrap();

    let events = rec.take();
    obs::check_invariants(&events).unwrap();
    let summary = TraceSummary::from_events(&events);
    summary.reconcile(&out.report, 1e-6).unwrap();
    assert!(summary.retries > 0, "faults must actually fire");
    assert_eq!(summary.faults_injected, summary.retries);
    assert_eq!(summary.slaves_killed, 1);
    assert_eq!(
        summary.leases_released, out.report.recovery.jobs_reenqueued,
        "every re-enqueue is a LeaseReleased event"
    );
}

/// The JSONL exporter round-trips a real run's stream byte-exactly at the
/// record level, with the documented schema header up front.
#[test]
fn jsonl_round_trips_live_events() {
    let spec = words_spec();
    let env = build_hybrid(
        spec.layout(),
        spec.fill(),
        HybridOpts {
            frac_local: 0.5,
            local_cores: 2,
            cloud_cores: 2,
            throttle: None,
        },
    )
    .unwrap();
    let (rec, cfg) = observed_cfg(RuntimeConfig::default());
    let _ = run(
        &WordCountApp,
        &(),
        &env.layout,
        &env.placement,
        &env.deployment,
        &cfg,
    )
    .unwrap();

    let events = rec.take();
    let text = obs::encode_jsonl(&events);
    let header = text.lines().next().unwrap();
    assert_eq!(
        header,
        format!(
            "{{\"schema\":\"{}\",\"v\":{}}}",
            obs::SCHEMA_NAME,
            obs::SCHEMA_VERSION
        )
    );
    let back = obs::decode_jsonl(&text).unwrap();
    assert_eq!(back, events);
}

/// Iterative runs: pass boundaries and cache traffic in the stream match
/// the per-pass reports summed together.
#[test]
fn iterative_cache_events_match_per_pass_reports() {
    use cloudburst_core::iterate::{run_iterative, Step};

    let spec = words_spec();
    let env = build_hybrid(
        spec.layout(),
        spec.fill(),
        HybridOpts {
            frac_local: 1.0,
            local_cores: 2,
            cloud_cores: 0,
            throttle: None,
        },
    )
    .unwrap();
    let (rec, cfg) = observed_cfg(RuntimeConfig {
        cache_bytes: 64 << 20,
        ..Default::default()
    });
    let out = run_iterative(
        &WordCountApp,
        (),
        &env.layout,
        &env.placement,
        &env.deployment,
        &cfg,
        3,
        |_i, _robj, _p| Step::Continue(()),
    )
    .unwrap();
    assert_eq!(out.iterations, 3);

    let events = rec.take();
    obs::check_invariants(&events).unwrap();
    let summary = TraceSummary::from_events(&events);
    assert_eq!(summary.passes, 3, "one PassBoundary per pass");
    let hits: u64 = out.reports.iter().map(|r| r.cache_hits).sum();
    let misses: u64 = out.reports.iter().map(|r| r.cache_misses).sum();
    assert_eq!(summary.cache_hits, hits);
    assert_eq!(summary.cache_misses, misses);
    assert!(summary.cache_hits > 0, "passes 2..3 re-read from the cache");
    let jobs: u64 = out.reports.iter().map(|r| r.total_jobs()).sum();
    assert_eq!(summary.total_jobs(), jobs);
}

/// The simulator mirrors the taxonomy: its virtual-time stream passes the
/// same invariant checks and reconciles against its own report, including
/// under injected faults and kills.
#[test]
fn sim_events_reconcile_with_sim_report() {
    use cb_sim::calib::{self, App, NetConstants};

    let app = App::ALL
        .into_iter()
        .find(|a| a.name() == "knn")
        .expect("knn profile");
    let envs = calib::fig3_envs(app);
    let env = envs.iter().find(|e| e.name == "env-33/67").unwrap();
    let mut params = calib::build_params(app, env, &NetConstants::default(), 2011);
    params.prefetch_depth = 2;
    params.faults.fetch_failure_prob = 0.02;
    params.faults.kill_schedule = vec![SlaveKill {
        cluster: 1,
        slave: 3,
        after_jobs: 5,
    }];

    let (report, _trace, events) = cb_sim::simulate_observed(params).unwrap();
    assert!(!events.is_empty());
    obs::check_invariants(&events).unwrap();
    let summary = TraceSummary::from_events(&events);
    summary.reconcile(&report, 1e-6).unwrap();
    assert_eq!(summary.slaves_killed, 1);
    assert!(summary.fetch_failures > 0, "fault injection must fire");

    // Virtual timestamps are monotone non-decreasing.
    assert!(events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
}

/// Event timestamps from the live runtime are monotone per emission order.
#[test]
fn live_timestamps_are_monotone() {
    let spec = words_spec();
    let env = build_hybrid(
        spec.layout(),
        spec.fill(),
        HybridOpts {
            frac_local: 0.5,
            local_cores: 2,
            cloud_cores: 2,
            throttle: None,
        },
    )
    .unwrap();
    let (rec, cfg) = observed_cfg(RuntimeConfig::default());
    let _ = run(
        &WordCountApp,
        &(),
        &env.layout,
        &env.placement,
        &env.deployment,
        &cfg,
    )
    .unwrap();
    let events: Vec<EventRecord> = rec.take();
    assert!(events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Observation is passive: enabling the sink never changes the
        /// reduction result, whatever the placement skew, parallelism, or
        /// prefetch depth.
        #[test]
        fn sink_never_changes_the_result(
            frac_pct in 0u64..=100,
            cores in 1usize..3,
            prefetch in 0usize..3,
            seed in 1u64..200,
        ) {
            let frac_local = frac_pct as f64 / 100.0;
            let spec = points_spec(seed);
            let app = SelectionApp::new(spec.dim);
            let query = BoxQuery::new(vec![0.0; spec.dim], vec![0.3; spec.dim]);

            let mut results = Vec::new();
            for observed in [false, true] {
                let env = build_hybrid(
                    spec.layout(),
                    spec.fill(),
                    HybridOpts {
                        frac_local,
                        local_cores: cores,
                        cloud_cores: cores,
                        throttle: None,
                    },
                )
                .unwrap();
                let base = RuntimeConfig {
                    prefetch_depth: prefetch,
                    ..Default::default()
                };
                let (rec, cfg) = if observed {
                    let (rec, cfg) = observed_cfg(base);
                    (Some(rec), cfg)
                } else {
                    (None, base)
                };
                let out = run(
                    &app, &query, &env.layout, &env.placement, &env.deployment, &cfg,
                )
                .unwrap();
                if let Some(rec) = rec {
                    obs::check_invariants(&rec.take()).unwrap();
                }
                results.push(out.result.into_sorted());
            }
            prop_assert_eq!(&results[0], &results[1]);
        }
    }
}
