//! Integration tests for the framework's extension surface: the selection
//! application, the iterative driver, heterogeneous clusters, three-site
//! deployments, and disk-backed stores.

use cb_apps::gen::{PointMode, PointsSpec};
use cb_apps::kmeans::{centroid_shift, next_centroids, Centroids, KMeansApp};
use cb_apps::scenario::{build_hybrid, HybridOpts};
use cb_apps::selection::{selection_reference, BoxQuery, SelectionApp};
use cb_apps::wordcount::WordCountApp;
use cb_storage::builder::{materialize, StoreMap};
use cb_storage::layout::{LocationId, Placement};
use cb_storage::store::{DiskStore, MemStore, ObjectStore};
use cloudburst_core::api::ReductionObject;
use cloudburst_core::config::RuntimeConfig;
use cloudburst_core::deploy::{ClusterSpec, DataFabric, Deployment};
use cloudburst_core::iterate::{run_iterative, Step};
use cloudburst_core::runtime::run;
use std::collections::BTreeMap;
use std::sync::Arc;

fn points_spec() -> PointsSpec {
    PointsSpec {
        n_files: 6,
        points_per_file: 3_000,
        points_per_chunk: 500,
        dim: 3,
        seed: 77,
        mode: PointMode::Uniform,
    }
}

/// Selection (distributed grep) across a skewed hybrid environment equals
/// the brute-force reference, and its reduction object grows with the hit
/// count (the data-dependent-robj case).
#[test]
fn selection_end_to_end_matches_reference() {
    let spec = points_spec();
    let layout = spec.layout();
    let app = SelectionApp::new(spec.dim);
    let query = BoxQuery::new(vec![0.2; spec.dim], vec![0.6; spec.dim]);

    let env = build_hybrid(
        layout.clone(),
        spec.fill(),
        HybridOpts {
            frac_local: 0.17,
            local_cores: 3,
            cloud_cores: 3,
            throttle: None,
        },
    )
    .unwrap();
    let out = run(
        &app,
        &query,
        &env.layout,
        &env.placement,
        &env.deployment,
        &RuntimeConfig::default(),
    )
    .unwrap();

    // Reference over the same generated data with the same global ids.
    let mut ref_pts = Vec::new();
    for chunk in &layout.chunks {
        let flat = spec.chunk_points(chunk);
        for (i, p) in flat.chunks_exact(spec.dim).enumerate() {
            ref_pts.push((
                cb_apps::knn::KnnApp::unit_id(chunk, spec.dim, i),
                p.to_vec(),
            ));
        }
    }
    let expect = selection_reference(&ref_pts, &query);
    assert!(!expect.is_empty(), "query should match something");

    let robj_bytes = out.result.size_bytes();
    let got = out.result.into_sorted();
    assert_eq!(got, expect);
    assert_eq!(out.report.robj_bytes as usize, robj_bytes);
    assert!(robj_bytes >= expect.len() * 8);
}

/// Full iterative k-means through `run_iterative`, converging on blobs.
#[test]
fn iterative_driver_runs_kmeans_to_convergence() {
    let spec = PointsSpec {
        n_files: 4,
        points_per_file: 2_000,
        points_per_chunk: 500,
        dim: 2,
        seed: 9,
        mode: PointMode::Blobs {
            centers: 3,
            spread: 0.05,
        },
    };
    let app = KMeansApp::new(2, 3);
    let env = build_hybrid(
        spec.layout(),
        spec.fill(),
        HybridOpts {
            frac_local: 0.5,
            local_cores: 2,
            cloud_cores: 2,
            throttle: None,
        },
    )
    .unwrap();
    let init = Centroids::new(
        2,
        (0..3)
            .flat_map(|c| {
                PointsSpec::blob_center(spec.seed, c, 2)
                    .into_iter()
                    .map(|x| x + 0.5)
            })
            .collect(),
    );
    let out = run_iterative(
        &app,
        init,
        &env.layout,
        &env.placement,
        &env.deployment,
        &RuntimeConfig::default(),
        25,
        |_i, robj, params| {
            let next = next_centroids(&app, &robj, params);
            if centroid_shift(params, &next) < 1e-9 {
                Step::Done(next)
            } else {
                Step::Continue(next)
            }
        },
    )
    .unwrap();
    assert!(out.converged, "tight blobs must converge in 25 iterations");
    assert!(out.iterations >= 2, "perturbed init needs >1 pass");
    assert_eq!(out.reports.len(), out.iterations);
    // Converged centroids sit on blob centers.
    for c in 0..3 {
        let got = out.params.centroid(c);
        let d = (0..3)
            .map(|b| {
                PointsSpec::blob_center(spec.seed, b, 2)
                    .iter()
                    .zip(got)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt()
            })
            .fold(f64::INFINITY, f64::min);
        assert!(d < 0.1, "centroid {c} off by {d}");
    }
}

/// Pool-based balancing across heterogeneous clusters: a cluster with
/// double per-unit compute cost processes (substantially) fewer jobs, with
/// no static partitioning anywhere.
#[test]
fn heterogeneous_clusters_balance_by_demand() {
    let spec = points_spec();
    let layout = spec.layout();
    let placement =
        Placement::split_fraction(layout.files.len(), 0.5, LocationId(0), LocationId(1));
    let mut stores: StoreMap = BTreeMap::new();
    stores.insert(
        LocationId(0),
        Arc::new(MemStore::new("a")) as Arc<dyn ObjectStore>,
    );
    stores.insert(
        LocationId(1),
        Arc::new(MemStore::new("b")) as Arc<dyn ObjectStore>,
    );
    materialize(&layout, &placement, &stores, spec.fill()).unwrap();
    let fabric = DataFabric::direct(&stores);

    // Same core count, but the "slow" cluster burns 40 µs/unit vs 2 µs/unit
    // (large enough that synthetic compute dominates decode/fetch overhead).
    let deployment = Deployment::new(
        vec![
            ClusterSpec::new("fast", LocationId(0), 2).with_compute_ns(2_000),
            ClusterSpec::new("slow", LocationId(1), 2).with_compute_ns(40_000),
        ],
        fabric,
    );
    let app = KMeansApp::new(spec.dim, 2);
    let params = Centroids::new(spec.dim, vec![0.2; spec.dim * 2]);
    // Serial slaves: a prefetch lease per slow slave would buffer extra
    // jobs behind slow compute, blunting the demand signal this tiny
    // workload is measuring.
    let cfg = RuntimeConfig {
        prefetch_depth: 0,
        ..Default::default()
    };
    let out = run(&app, &params, &layout, &placement, &deployment, &cfg).unwrap();

    let fast = out.report.cluster("fast").unwrap();
    let slow = out.report.cluster("slow").unwrap();
    assert_eq!(
        fast.jobs_processed + slow.jobs_processed,
        layout.n_jobs() as u64
    );
    assert!(
        fast.jobs_processed >= slow.jobs_processed * 3,
        "demand-driven pooling should shift work to the fast cluster: fast={} slow={}",
        fast.jobs_processed,
        slow.jobs_processed
    );
    assert!(
        fast.jobs_stolen > 0,
        "the fast cluster must have stolen slow-site data"
    );
}

/// Three compute sites sharing one job pool (the multi-cloud claim) on the
/// *real* runtime, not just the simulator.
#[test]
fn three_site_deployment_runs_correctly() {
    let spec = points_spec();
    let layout = spec.layout();
    let l0 = LocationId(0);
    let l1 = LocationId(1);
    let l2 = LocationId(2);
    // Two files per site.
    let homes = vec![l0, l0, l1, l1, l2, l2];
    let placement = Placement::from_homes(homes);
    let mut stores: StoreMap = BTreeMap::new();
    for (i, loc) in [l0, l1, l2].into_iter().enumerate() {
        stores.insert(
            loc,
            Arc::new(MemStore::new(format!("site{i}"))) as Arc<dyn ObjectStore>,
        );
    }
    materialize(&layout, &placement, &stores, spec.fill()).unwrap();
    let deployment = Deployment::new(
        vec![
            ClusterSpec::new("local", l0, 2),
            ClusterSpec::new("cloudA", l1, 2),
            ClusterSpec::new("cloudB", l2, 2),
        ],
        DataFabric::direct(&stores),
    );

    let app = SelectionApp::new(spec.dim);
    let query = BoxQuery::new(vec![0.0; spec.dim], vec![0.5; spec.dim]);
    let out = run(
        &app,
        &query,
        &layout,
        &placement,
        &deployment,
        &RuntimeConfig::default(),
    )
    .unwrap();
    assert_eq!(out.report.clusters.len(), 3);
    assert_eq!(out.report.total_jobs(), layout.n_jobs() as u64);

    // Same answer as a two-site run over identical data.
    let env2 = build_hybrid(
        spec.layout(),
        spec.fill(),
        HybridOpts {
            frac_local: 0.5,
            local_cores: 3,
            cloud_cores: 3,
            throttle: None,
        },
    )
    .unwrap();
    let out2 = run(
        &app,
        &query,
        &env2.layout,
        &env2.placement,
        &env2.deployment,
        &RuntimeConfig::default(),
    )
    .unwrap();
    assert_eq!(out.result.into_sorted(), out2.result.into_sorted());
}

/// The whole pipeline against a real on-disk store: organize → index →
/// run → verify, with files on the filesystem rather than in memory.
#[test]
fn disk_backed_store_end_to_end() {
    let dir = std::env::temp_dir().join(format!("cb-disk-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let disk = Arc::new(DiskStore::open("disk", &dir).unwrap());

    let spec = cb_apps::gen::WordsSpec {
        vocabulary: 100,
        n_files: 3,
        words_per_file: 5_000,
        words_per_chunk: 1_000,
        seed: 4,
    };
    let layout = spec.layout();
    let placement = Placement::all_at(layout.files.len(), LocationId(0));
    let mut stores: StoreMap = BTreeMap::new();
    stores.insert(LocationId(0), disk.clone() as Arc<dyn ObjectStore>);
    materialize(&layout, &placement, &stores, spec.fill()).unwrap();

    // Re-analyze the on-disk files: must reconstruct the same layout.
    let reanalyzed = cb_storage::organizer::analyze_store(
        disk.as_ref(),
        &cb_storage::organizer::OrganizerConfig {
            chunk_bytes: 1_000 * 8,
            unit_bytes: 8,
        },
    )
    .unwrap();
    assert_eq!(reanalyzed, layout);

    let deployment = Deployment::new(
        vec![ClusterSpec::new("local", LocationId(0), 3)],
        DataFabric::direct(&stores),
    );
    let out = run(
        &WordCountApp,
        &(),
        &layout,
        &placement,
        &deployment,
        &RuntimeConfig::default(),
    )
    .unwrap();
    let expect = cb_apps::wordcount::wordcount_reference(&spec.all_words(&layout));
    assert_eq!(out.result.len(), expect.len());
    for (w, n) in expect {
        assert_eq!(out.result.get(w).unwrap().1, n);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Transient remote failures: with the retriever's retry policy the run
/// completes correctly; with retries disabled the same faults surface to the
/// scheduler, which re-enqueues the failed jobs and still finishes the run.
#[test]
fn transient_store_faults_survived_by_retries() {
    use cb_storage::faults::{FaultMode, FlakyStore};

    let spec = points_spec();
    let layout = spec.layout();
    let placement =
        Placement::split_fraction(layout.files.len(), 0.5, LocationId(0), LocationId(1));
    let local = Arc::new(MemStore::new("local"));
    let cloud_backing = Arc::new(MemStore::new("cloud"));
    let mut stores: StoreMap = BTreeMap::new();
    stores.insert(LocationId(0), local.clone() as Arc<dyn ObjectStore>);
    stores.insert(LocationId(1), cloud_backing.clone() as Arc<dyn ObjectStore>);
    materialize(&layout, &placement, &stores, spec.fill()).unwrap();

    // Every cloud GET fails twice per key before succeeding.
    let flaky = Arc::new(FlakyStore::new(
        cloud_backing,
        FaultMode::FirstNPerKey { n: 2 },
        7,
    ));
    let mut fabric = DataFabric::new();
    fabric.set_path(LocationId(0), LocationId(0), local.clone());
    fabric.set_path(LocationId(1), LocationId(0), local);
    fabric.set_path(LocationId(0), LocationId(1), flaky.clone());
    fabric.set_path(LocationId(1), LocationId(1), flaky.clone());
    let deployment = Deployment::new(
        vec![
            ClusterSpec::new("local", LocationId(0), 2),
            ClusterSpec::new("EC2", LocationId(1), 2),
        ],
        fabric,
    );

    let app = SelectionApp::new(spec.dim);
    let query = BoxQuery::new(vec![0.0; spec.dim], vec![0.3; spec.dim]);

    // Default config retries twice — exactly enough for FirstNPerKey{2}...
    // use 3 to be clearly above the fault budget.
    let cfg = RuntimeConfig {
        retrieval_retries: 3,
        retrieval_backoff: std::time::Duration::ZERO,
        ..Default::default()
    };
    let out = run(&app, &query, &layout, &placement, &deployment, &cfg).unwrap();
    assert!(flaky.injected_failures() > 0, "faults must actually fire");
    assert_eq!(out.report.total_jobs(), layout.n_jobs() as u64);
    assert_eq!(
        out.report.recovery.fetch_failures, 0,
        "retries absorb the faults below the scheduler"
    );

    // Without retries, the same faults become job failures that the
    // scheduler re-enqueues; the run still completes with the same answer.
    // (Faults were consumed above, so rebuild a fresh flaky view. A high
    // failure threshold keeps slave retirement out of the picture so the
    // outcome does not depend on thread interleaving.)
    let flaky2 = Arc::new(FlakyStore::new(
        Arc::new({
            let m = MemStore::new("cloud2");
            for key in flaky.list() {
                let size = flaky.size_of(&key).unwrap();
                m.put(&key, flaky.get_range(&key, 0, size).unwrap())
                    .unwrap();
            }
            m
        }),
        FaultMode::FirstNPerKey { n: 2 },
        7,
    ));
    let mut fabric2 = DataFabric::new();
    let local2 = Arc::new(MemStore::new("local2"));
    for key in stores[&LocationId(0)].list() {
        let size = stores[&LocationId(0)].size_of(&key).unwrap();
        local2
            .put(
                &key,
                stores[&LocationId(0)].get_range(&key, 0, size).unwrap(),
            )
            .unwrap();
    }
    fabric2.set_path(LocationId(0), LocationId(0), local2.clone());
    fabric2.set_path(LocationId(1), LocationId(0), local2);
    fabric2.set_path(LocationId(0), LocationId(1), flaky2.clone());
    fabric2.set_path(LocationId(1), LocationId(1), flaky2);
    let deployment2 = Deployment::new(
        vec![
            ClusterSpec::new("local", LocationId(0), 2),
            ClusterSpec::new("EC2", LocationId(1), 2),
        ],
        fabric2,
    );
    let cfg0 = RuntimeConfig {
        retrieval_retries: 0,
        slave_failure_threshold: 1_000,
        ..Default::default()
    };
    let out0 = run(&app, &query, &layout, &placement, &deployment2, &cfg0).unwrap();
    let rec = &out0.report.recovery;
    assert!(rec.fetch_failures > 0, "faults must reach the scheduler");
    assert_eq!(
        rec.fetch_failures, rec.jobs_reenqueued,
        "every failed fetch is re-enqueued"
    );
    assert_eq!(out0.report.total_jobs(), layout.n_jobs() as u64);
    assert_eq!(
        out.result.into_sorted(),
        out0.result.into_sorted(),
        "recovery path must not change the answer"
    );
}

/// A cloud master with a nonzero head RTT still terminates and balances;
/// its sync time reflects the request latency.
#[test]
fn head_rtt_adds_latency_but_preserves_correctness() {
    let spec = points_spec();
    let layout = spec.layout();
    let app = SelectionApp::new(spec.dim);
    let query = BoxQuery::new(vec![0.0; spec.dim], vec![0.4; spec.dim]);

    let build = |rtt_ms: u64| {
        let placement =
            Placement::split_fraction(layout.files.len(), 0.5, LocationId(0), LocationId(1));
        let mut stores: StoreMap = BTreeMap::new();
        stores.insert(
            LocationId(0),
            Arc::new(MemStore::new("a")) as Arc<dyn ObjectStore>,
        );
        stores.insert(
            LocationId(1),
            Arc::new(MemStore::new("b")) as Arc<dyn ObjectStore>,
        );
        materialize(&layout, &placement, &stores, spec.fill()).unwrap();
        let deployment = Deployment::new(
            vec![
                ClusterSpec::new("local", LocationId(0), 2),
                ClusterSpec::new("EC2", LocationId(1), 2)
                    .with_head_rtt(std::time::Duration::from_millis(rtt_ms)),
            ],
            DataFabric::direct(&stores),
        );
        (placement, deployment)
    };

    let (placement, fast_dep) = build(0);
    let fast = run(
        &app,
        &query,
        &layout,
        &placement,
        &fast_dep,
        &RuntimeConfig::default(),
    )
    .unwrap();
    let (placement, slow_dep) = build(30);
    let slow = run(
        &app,
        &query,
        &layout,
        &placement,
        &slow_dep,
        &RuntimeConfig::default(),
    )
    .unwrap();

    assert_eq!(
        fast.result.into_sorted(),
        slow.result.into_sorted(),
        "latency must not change the answer"
    );
    assert!(
        slow.report.total_s > fast.report.total_s,
        "a 30ms head RTT must cost wall time: {} vs {}",
        slow.report.total_s,
        fast.report.total_s
    );
}

/// Slave-side chunk caching for iterative workloads: wrap the remote path
/// in a `CachedStore` and the second k-means pass stops paying WAN cost.
#[test]
fn cached_store_accelerates_iterative_passes() {
    use cb_storage::cache::CachedStore;
    use cb_storage::s3sim::{RemoteProfile, RemoteStore};
    use std::time::Duration;

    let spec = PointsSpec {
        n_files: 4,
        points_per_file: 2_000,
        points_per_chunk: 500,
        dim: 2,
        seed: 21,
        mode: PointMode::Blobs {
            centers: 2,
            spread: 0.2,
        },
    };
    let layout = spec.layout();
    let placement = Placement::all_at(layout.files.len(), LocationId(1));
    let backing = Arc::new(MemStore::new("s3"));
    let mut stores: StoreMap = BTreeMap::new();
    stores.insert(LocationId(1), backing.clone() as Arc<dyn ObjectStore>);
    materialize(&layout, &placement, &stores, spec.fill()).unwrap();

    // Local cluster reads S3 through a 25ms-latency remote path, cached.
    let remote = Arc::new(RemoteStore::new(
        "s3-wan",
        backing,
        RemoteProfile {
            request_latency: Duration::from_millis(25),
            aggregate_bps: f64::INFINITY,
            per_conn_bps: f64::INFINITY,
        },
    ));
    let cached = Arc::new(CachedStore::new(remote, 64 << 20));
    let mut fabric = DataFabric::new();
    fabric.set_path(LocationId(0), LocationId(1), cached.clone());
    let deployment = Deployment::new(vec![ClusterSpec::new("local", LocationId(0), 2)], fabric);

    let app = KMeansApp::new(spec.dim, 2);
    let init = Centroids::new(
        spec.dim,
        (0..2)
            .flat_map(|c| PointsSpec::blob_center(spec.seed, c, spec.dim))
            .collect(),
    );
    let cfg = RuntimeConfig::default();

    let pass1 = run(&app, &init, &layout, &placement, &deployment, &cfg).unwrap();
    let misses_after_1 = cached.misses();
    assert!(misses_after_1 > 0, "first pass must go to the wire");

    let pass2 = run(&app, &init, &layout, &placement, &deployment, &cfg).unwrap();
    assert_eq!(
        cached.misses(),
        misses_after_1,
        "second pass must be served entirely from cache"
    );
    assert!(cached.hits() > 0);
    let r1 = pass1.report.cluster("local").unwrap().retrieval_s;
    let r2 = pass2.report.cluster("local").unwrap().retrieval_s;
    assert!(
        r2 < r1 / 3.0,
        "cached pass should dodge the 25ms-per-chunk latency: {r1} vs {r2}"
    );
    // Identical results either way.
    for (a, b) in pass1.result.values().iter().zip(pass2.result.values()) {
        assert!((a - b).abs() < 1e-12);
    }
}

/// The full unsupervised pipeline over the framework: a sampling pass
/// (bottom-k sketch) → k-means++ seeding → iterative k-means, all
/// distributed. Converges onto the generating blob centers.
#[test]
fn sampling_and_kmeans_plus_plus_pipeline() {
    use cb_apps::sample::{kmeans_plus_plus, SampleApp};

    let spec = PointsSpec {
        n_files: 4,
        points_per_file: 3_000,
        points_per_chunk: 500,
        dim: 2,
        seed: 33,
        mode: PointMode::Blobs {
            centers: 3,
            spread: 0.08,
        },
    };
    let env = build_hybrid(
        spec.layout(),
        spec.fill(),
        HybridOpts {
            frac_local: 0.33,
            local_cores: 2,
            cloud_cores: 2,
            throttle: None,
        },
    )
    .unwrap();
    let cfg = RuntimeConfig::default();

    // Pass 1: distributed uniform sample.
    let sampler = SampleApp::new(spec.dim, 200, 7);
    let sample_out = run(
        &sampler,
        &(),
        &env.layout,
        &env.placement,
        &env.deployment,
        &cfg,
    )
    .unwrap();
    let sample = sample_out.result.into_points();
    assert_eq!(sample.len(), 200);

    // Seed with k-means++ on the sample, then iterate to convergence.
    let app = KMeansApp::new(spec.dim, 3);
    let init = Centroids::new(spec.dim, kmeans_plus_plus(&sample, 3, 11));
    let out = run_iterative(
        &app,
        init,
        &env.layout,
        &env.placement,
        &env.deployment,
        &cfg,
        30,
        |_i, robj, params| {
            let next = next_centroids(&app, &robj, params);
            if centroid_shift(params, &next) < 1e-9 {
                Step::Done(next)
            } else {
                Step::Continue(next)
            }
        },
    )
    .unwrap();
    assert!(out.converged);

    // Every generating blob center is matched by some converged centroid.
    for b in 0..3 {
        let center = PointsSpec::blob_center(spec.seed, b, spec.dim);
        let best = (0..3)
            .map(|c| {
                out.params
                    .centroid(c)
                    .iter()
                    .zip(&center)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt()
            })
            .fold(f64::INFINITY, f64::min);
        assert!(best < 0.15, "blob {b} unmatched: nearest centroid {best}");
    }
}
