//! Property-based tests of the scheduling state machines and the combiner
//! algebra — the invariants DESIGN.md §8 commits to.

use cb_storage::layout::{ChunkId, LocationId, Placement};
use cb_storage::organizer::organize_even;
use cloudburst_core::api::ReductionObject;
use cloudburst_core::combine::{Concat, KeyedSum, MinMax, TopK, VecSum};
use cloudburst_core::sched::pool::{JobPool, PoolConfig};
use proptest::prelude::*;

const L: LocationId = LocationId(0);
const C: LocationId = LocationId(1);

/// Drive a JobPool with an arbitrary interleaving of requests/completions
/// from two clusters; every job must be granted exactly once and completed
/// exactly once, regardless of schedule.
fn drive_pool(
    n_files: usize,
    chunks_per_file: u64,
    frac_local: f64,
    cfg: PoolConfig,
    schedule: &[bool], // true = local acts, false = cloud acts
) -> (usize, JobPool) {
    let layout = organize_even(n_files, chunks_per_file * 64, 64, 8).unwrap();
    let placement = Placement::split_fraction(n_files, frac_local, L, C);
    let total = layout.n_jobs();
    let mut pool = JobPool::new(&layout, &placement, cfg);

    let mut queues: [Vec<ChunkId>; 2] = [Vec::new(), Vec::new()];
    let mut seen = std::collections::BTreeSet::new();
    let mut step = 0usize;
    // Alternate per the schedule (cycled) until everything completes.
    while !pool.all_done() {
        let actor = schedule[step % schedule.len()];
        step += 1;
        let (loc, q) = if actor {
            (L, &mut queues[0])
        } else {
            (C, &mut queues[1])
        };
        // Complete one held job, if any; otherwise request more.
        if let Some(job) = q.pop() {
            pool.complete(loc, job);
        } else {
            let grant = pool.request(loc);
            for j in grant.jobs {
                assert!(seen.insert(j), "job {j} granted twice");
                q.push(j);
            }
        }
        // Bail-out guard (should be unreachable): a livelock would loop
        // forever when stealing is off and one side holds nothing.
        if step > total * 100 + 1000 {
            // Drain whatever is held and stop.
            for (i, loc) in [(0usize, L), (1usize, C)] {
                while let Some(j) = queues[i].pop() {
                    pool.complete(loc, j);
                }
            }
            break;
        }
    }
    (seen.len(), pool)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With stealing on, every schedule grants every job exactly once.
    #[test]
    fn pool_grants_every_job_once(
        n_files in 1usize..8,
        chunks_per_file in 1u64..12,
        frac in 0.0f64..1.0,
        local_batch in 1usize..10,
        remote_batch in 1usize..6,
        schedule in prop::collection::vec(any::<bool>(), 1..32),
    ) {
        let cfg = PoolConfig {
            local_batch,
            remote_batch,
            allow_stealing: true,
            consecutive: true,
            ..PoolConfig::default()
        };
        let total = n_files * chunks_per_file as usize;
        let (granted, pool) = drive_pool(n_files, chunks_per_file, frac, cfg, &schedule);
        prop_assert_eq!(granted, total);
        prop_assert!(pool.all_done());
        let counters = [pool.counters(L), pool.counters(C)];
        let completed: u64 = counters.iter().map(|c| c.completed).sum();
        prop_assert_eq!(completed, total as u64);
        let granted_total: u64 = counters
            .iter()
            .map(|c| c.granted_local + c.granted_stolen)
            .sum();
        prop_assert_eq!(granted_total, total as u64);
    }

    /// The non-consecutive ablation preserves exactly-once too.
    #[test]
    fn pool_round_robin_still_exactly_once(
        n_files in 2usize..6,
        chunks_per_file in 1u64..8,
        schedule in prop::collection::vec(any::<bool>(), 1..16),
    ) {
        let cfg = PoolConfig {
            consecutive: false,
            ..PoolConfig::default()
        };
        let total = n_files * chunks_per_file as usize;
        let (granted, pool) = drive_pool(n_files, chunks_per_file, 0.5, cfg, &schedule);
        prop_assert_eq!(granted, total);
        prop_assert!(pool.all_done());
    }

    /// With stealing off, each site completes exactly its own files' jobs.
    #[test]
    fn pool_no_stealing_respects_homes(
        n_files in 2usize..8,
        chunks_per_file in 1u64..8,
        frac in 0.0f64..1.0,
    ) {
        let cfg = PoolConfig {
            allow_stealing: false,
            ..PoolConfig::default()
        };
        let layout = organize_even(n_files, chunks_per_file * 64, 64, 8).unwrap();
        let placement = Placement::split_fraction(n_files, frac, L, C);
        let local_jobs: u64 = placement
            .files_at(L)
            .map(|f| layout.chunks_of_file(f).count() as u64)
            .sum();
        let mut pool = JobPool::new(&layout, &placement, cfg);
        // Each cluster drains everything it can get.
        for loc in [L, C] {
            loop {
                let g = pool.request(loc);
                if g.is_empty() {
                    break;
                }
                prop_assert!(!g.stolen);
                for j in g.jobs {
                    pool.complete(loc, j);
                }
            }
        }
        prop_assert!(pool.all_done());
        prop_assert_eq!(pool.counters(L).completed, local_jobs);
        prop_assert_eq!(pool.counters(C).completed, layout.n_jobs() as u64 - local_jobs);
        prop_assert_eq!(pool.counters(L).granted_stolen, 0);
        prop_assert_eq!(pool.counters(C).granted_stolen, 0);
    }

    /// VecSum merge is commutative and associative.
    #[test]
    fn vecsum_algebra(
        a in prop::collection::vec(-1e6f64..1e6, 1..20),
        b in prop::collection::vec(-1e6f64..1e6, 1..20),
        c in prop::collection::vec(-1e6f64..1e6, 1..20),
    ) {
        let n = a.len().min(b.len()).min(c.len());
        let (a, b, c) = (&a[..n], &b[..n], &c[..n]);
        let v = |s: &[f64]| VecSum::from_vec(s.to_vec());

        // Commutative.
        let mut ab = v(a);
        ab.merge(v(b));
        let mut ba = v(b);
        ba.merge(v(a));
        for (x, y) in ab.values().iter().zip(ba.values()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
        // Associative.
        let mut ab_c = ab.clone();
        ab_c.merge(v(c));
        let mut bc = v(b);
        bc.merge(v(c));
        let mut a_bc = v(a);
        a_bc.merge(bc);
        for (x, y) in ab_c.values().iter().zip(a_bc.values()) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    /// TopK over any split of the input equals TopK over the whole input.
    #[test]
    fn topk_split_invariance(
        scores in prop::collection::vec(0u32..10_000, 1..200),
        k in 1usize..20,
        pivot in 0usize..200,
    ) {
        let pivot = pivot.min(scores.len());
        let mut whole = TopK::new(k);
        for (i, &s) in scores.iter().enumerate() {
            whole.offer(s as f64, i as u64);
        }
        let mut left = TopK::new(k);
        for (i, &s) in scores.iter().enumerate().take(pivot) {
            left.offer(s as f64, i as u64);
        }
        let mut right = TopK::new(k);
        for (i, &s) in scores.iter().enumerate().skip(pivot) {
            right.offer(s as f64, i as u64);
        }
        left.merge(right);
        prop_assert_eq!(left.into_sorted(), whole.into_sorted());
    }

    /// KeyedSum split-merge equals whole-input accumulation.
    #[test]
    fn keyedsum_split_invariance(
        pairs in prop::collection::vec((0u64..50, -100.0f64..100.0), 0..200),
        pivot in 0usize..200,
    ) {
        let pivot = pivot.min(pairs.len());
        let mut whole = KeyedSum::new();
        for &(k, v) in &pairs {
            whole.add(k, v);
        }
        let mut left = KeyedSum::new();
        for &(k, v) in &pairs[..pivot] {
            left.add(k, v);
        }
        let mut right = KeyedSum::new();
        for &(k, v) in &pairs[pivot..] {
            right.add(k, v);
        }
        left.merge(right);
        prop_assert_eq!(left.len(), whole.len());
        for (k, (s, n)) in whole.iter() {
            let (s2, n2) = left.get(k).unwrap();
            prop_assert!((s - s2).abs() < 1e-6);
            prop_assert_eq!(n, n2);
        }
    }

    /// Concat's canonical order is merge-order independent.
    #[test]
    fn concat_order_invariance(
        xs in prop::collection::vec(any::<i32>(), 0..100),
        pivot in 0usize..100,
    ) {
        let pivot = pivot.min(xs.len());
        let mut a = Concat::new();
        for &x in &xs[..pivot] {
            a.push(x);
        }
        let mut b = Concat::new();
        for &x in &xs[pivot..] {
            b.push(x);
        }
        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b;
        ba.merge(a);
        prop_assert_eq!(ab.into_sorted(), ba.into_sorted());
    }

    /// MinMax merge equals min/max over the union.
    #[test]
    fn minmax_union(
        xs in prop::collection::vec(any::<i64>(), 1..100),
        pivot in 0usize..100,
    ) {
        let pivot = pivot.min(xs.len());
        let mut a = MinMax::default();
        for &x in &xs[..pivot] {
            a.observe(x);
        }
        let mut b = MinMax::default();
        for &x in &xs[pivot..] {
            b.observe(x);
        }
        a.merge(b);
        prop_assert_eq!(a.min, xs.iter().copied().min());
        prop_assert_eq!(a.max, xs.iter().copied().max());
    }
}

/// Deterministic regression: empty-side merges are identities.
#[test]
fn merge_identities() {
    let mut t = TopK::new(3);
    t.offer(1.0, 1);
    t.merge(TopK::new(3));
    assert_eq!(t.len(), 1);

    let mut k = KeyedSum::new();
    k.add(1, 1.0);
    k.merge(KeyedSum::new());
    assert_eq!(k.len(), 1);

    let mut v = VecSum::zeros(3);
    v.add_at(1, 5.0);
    v.merge(VecSum::zeros(3));
    assert_eq!(v.values(), &[0.0, 5.0, 0.0]);
}
