//! k-Nearest-Neighbors with cloud bursting — the paper's first evaluation
//! application, at laptop scale with wall-clock-throttled remote stores.
//!
//! ```text
//! cargo run -p cb-apps --release --example knn_bursting
//! ```
//!
//! Runs the same query over three data placements (all-local, 50/50,
//! 17/83) and prints the per-cluster processing / retrieval / sync
//! breakdown, showing retrieval cost growing with skew exactly as in
//! Fig. 3(a).

use cb_apps::gen::{PointMode, PointsSpec};
use cb_apps::knn::{KnnApp, KnnQuery};
use cb_apps::scenario::{build_hybrid, HybridOpts, ThrottleOpts};
use cloudburst_core::config::RuntimeConfig;
use cloudburst_core::runtime::run;

fn main() {
    let spec = PointsSpec {
        n_files: 8,
        points_per_file: 40_000,
        points_per_chunk: 5_000,
        dim: 4,
        seed: 20110926, // CLUSTER 2011 :-)
        mode: PointMode::Uniform,
    };
    let app = KnnApp::new(spec.dim, 10);
    let query = KnnQuery {
        query: vec![0.5; spec.dim],
    };

    let mut last_neighbors = None;
    for (label, frac_local) in [
        ("all-local", 1.0),
        ("50/50 split", 0.5),
        ("17/83 split", 0.17),
    ] {
        let env = build_hybrid(
            spec.layout(),
            spec.fill(),
            HybridOpts {
                frac_local,
                local_cores: 2,
                cloud_cores: 2,
                throttle: Some(ThrottleOpts::scaled_default()),
            },
        )
        .expect("environment");

        let out = run(
            &app,
            &query,
            &env.layout,
            &env.placement,
            &env.deployment,
            &RuntimeConfig::default(),
        )
        .expect("run");

        println!(
            "=== {label} ({}% of files local) ===",
            (frac_local * 100.0) as u32
        );
        print!("{}", out.report.render());

        let neighbors = out.result.into_sorted();
        println!(
            "nearest neighbor: id {} at distance² {:.6}\n",
            neighbors[0].1, neighbors[0].0
        );

        // The answer must not depend on where the data lived.
        if let Some(prev) = &last_neighbors {
            assert_eq!(prev, &neighbors, "placement changed the result!");
        }
        last_neighbors = Some(neighbors);
    }
    println!(
        "all three placements returned identical neighbors — \
              data location is transparent to the application."
    );
}
