//! Transient-failure handling: run a batch k-NN workload against a cloud
//! store that drops a random fraction of GETs (as the real 2011-era S3
//! occasionally did), and watch the retriever's retry policy absorb it.
//!
//! ```text
//! cargo run -p cb-apps --release --example fault_tolerance
//! ```

use cb_apps::gen::{PointMode, PointsSpec};
use cb_apps::knn::{BatchKnnApp, BatchQueries};
use cb_storage::builder::{materialize, StoreMap};
use cb_storage::faults::{FaultMode, FlakyStore};
use cb_storage::layout::{LocationId, Placement};
use cb_storage::store::{MemStore, ObjectStore};
use cloudburst_core::config::RuntimeConfig;
use cloudburst_core::deploy::{ClusterSpec, DataFabric, Deployment};
use cloudburst_core::runtime::run;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let spec = PointsSpec {
        n_files: 6,
        points_per_file: 20_000,
        points_per_chunk: 2_500,
        dim: 3,
        seed: 99,
        mode: PointMode::Uniform,
    };
    let layout = spec.layout();

    // All data in the "cloud"; its store drops 20% of GETs.
    let placement = Placement::all_at(layout.files.len(), LocationId(1));
    let backing = Arc::new(MemStore::new("s3-backing"));
    let mut stores: StoreMap = BTreeMap::new();
    stores.insert(LocationId(1), backing.clone() as Arc<dyn ObjectStore>);
    materialize(&layout, &placement, &stores, spec.fill()).expect("materialize");
    let flaky = Arc::new(FlakyStore::new(
        backing,
        FaultMode::Random { probability: 0.2 },
        2011,
    ));

    let mut fabric = DataFabric::new();
    fabric.set_path(LocationId(0), LocationId(1), flaky.clone());
    fabric.set_path(LocationId(1), LocationId(1), flaky.clone());
    let deployment = Deployment::new(
        vec![
            ClusterSpec::new("local", LocationId(0), 2),
            ClusterSpec::new("EC2", LocationId(1), 2),
        ],
        fabric,
    );

    let app = BatchKnnApp::new(spec.dim, 5);
    let params = BatchQueries {
        queries: vec![
            vec![0.1, 0.1, 0.1],
            vec![0.5, 0.5, 0.5],
            vec![0.9, 0.2, 0.7],
        ],
    };

    // Attempt 1: no retries — expected to fail loudly.
    let fragile = RuntimeConfig {
        retrieval_retries: 0,
        ..Default::default()
    };
    match run(&app, &params, &layout, &placement, &deployment, &fragile) {
        Err(e) => println!("without retries, the run fails as it should:\n  {e}\n"),
        Ok(_) => println!("(got lucky — every GET happened to succeed)\n"),
    }
    let after_first = flaky.injected_failures();

    // Attempt 2: a production retry policy — completes correctly.
    let robust = RuntimeConfig {
        retrieval_retries: 8,
        retrieval_backoff: Duration::from_millis(1),
        ..Default::default()
    };
    let out = run(&app, &params, &layout, &placement, &deployment, &robust)
        .expect("retries should absorb 20% transient failures");
    println!(
        "with retries: processed {} jobs despite {} injected faults",
        out.report.total_jobs(),
        flaky.injected_failures() - after_first,
    );
    for (qi, result) in out.result.into_sorted().into_iter().enumerate() {
        let (d2, id) = result[0];
        println!("  query {qi}: nearest id {id} at distance² {d2:.6}");
    }
}
