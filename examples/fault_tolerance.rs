//! Fault tolerance end to end: transient storage faults, slave crashes, and
//! the loss of an entire cluster — all against the same batch k-NN workload,
//! all producing the identical result.
//!
//! The paper's §III-C observation makes this cheap: the only state a
//! generalized-reduction run needs to preserve is the tiny reduction object
//! (a killed slave's partial robj is a valid checkpoint) plus the set of
//! unprocessed chunks (the head's job pool already knows it). Failed fetches
//! re-enter the pool; a dead master's undispatched leases are reclaimed and
//! stolen by the survivors.
//!
//! ```text
//! cargo run -p cb-apps --release --example fault_tolerance
//! ```

use cb_apps::gen::{PointMode, PointsSpec};
use cb_apps::knn::{BatchKnnApp, BatchQueries};
use cb_storage::builder::{materialize, StoreMap};
use cb_storage::faults::{FaultMode, FlakyStore};
use cb_storage::layout::{LocationId, Placement};
use cb_storage::store::{MemStore, ObjectStore};
use cloudburst_core::config::{RuntimeConfig, SlaveKill};
use cloudburst_core::deploy::{ClusterSpec, DataFabric, Deployment};
use cloudburst_core::runtime::run;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let spec = PointsSpec {
        n_files: 6,
        points_per_file: 20_000,
        points_per_chunk: 2_500,
        dim: 3,
        seed: 99,
        mode: PointMode::Uniform,
    };
    let layout = spec.layout();

    // All data in the "cloud"; its store drops 20% of GETs (as the real
    // 2011-era S3 occasionally did).
    let placement = Placement::all_at(layout.files.len(), LocationId(1));
    let backing = Arc::new(MemStore::new("s3-backing"));
    let mut stores: StoreMap = BTreeMap::new();
    stores.insert(LocationId(1), backing.clone() as Arc<dyn ObjectStore>);
    materialize(&layout, &placement, &stores, spec.fill()).expect("materialize");
    let flaky = Arc::new(FlakyStore::new(
        backing,
        FaultMode::Random { probability: 0.2 },
        2011,
    ));

    let mut fabric = DataFabric::new();
    fabric.set_path(LocationId(0), LocationId(1), flaky.clone());
    fabric.set_path(LocationId(1), LocationId(1), flaky.clone());
    let deployment = Deployment::new(
        vec![
            ClusterSpec::new("local", LocationId(0), 2),
            ClusterSpec::new("EC2", LocationId(1), 2),
        ],
        fabric,
    );

    let app = BatchKnnApp::new(spec.dim, 5);
    let params = BatchQueries {
        queries: vec![
            vec![0.1, 0.1, 0.1],
            vec![0.5, 0.5, 0.5],
            vec![0.9, 0.2, 0.7],
        ],
    };

    // Act 1: no storage retries — every dropped GET surfaces to the
    // scheduler, which re-enqueues the job at the front of its file's queue.
    // The run completes anyway (unless a chunk exceeds its failure budget).
    let fragile = RuntimeConfig {
        retrieval_retries: 0,
        ..Default::default()
    };
    println!("act 1 — no storage retries; the scheduler itself recovers:");
    let act1 = match run(&app, &params, &layout, &placement, &deployment, &fragile) {
        Ok(out) => {
            let r = &out.report.recovery;
            println!(
                "  completed: {} fetch failures re-enqueued {} times\n",
                r.fetch_failures, r.jobs_reenqueued
            );
            Some(out.result.into_sorted())
        }
        Err(e) => {
            println!("  a chunk ran out its failure budget: {e}\n");
            None
        }
    };

    // Act 2: a production retry policy — faults are absorbed below the
    // scheduler and never become job failures.
    let robust = RuntimeConfig {
        retrieval_retries: 8,
        retrieval_backoff: Duration::from_millis(1),
        ..Default::default()
    };
    println!("act 2 — storage retries absorb the same fault rate:");
    let out = run(&app, &params, &layout, &placement, &deployment, &robust)
        .expect("retries should absorb 20% transient failures");
    let r = &out.report.recovery;
    println!(
        "  completed: {} low-level retries, {} job failures\n",
        r.retries, r.fetch_failures
    );
    let reference = out.result.into_sorted();

    // Act 3: crash every EC2 slave mid-run (one after its first job, one
    // before it does anything) on top of the flaky store. The dying master
    // returns its undispatched leases; the local cluster steals the orphaned
    // data; the killed slaves' partial robjs merge as checkpoints.
    let crashy = RuntimeConfig {
        retrieval_retries: 8,
        retrieval_backoff: Duration::from_millis(1),
        kill_schedule: vec![
            SlaveKill {
                cluster: 1,
                slave: 0,
                after_jobs: 1,
            },
            SlaveKill {
                cluster: 1,
                slave: 1,
                after_jobs: 0,
            },
        ],
        ..Default::default()
    };
    println!("act 3 — lose the whole EC2 cluster mid-run:");
    let out = run(&app, &params, &layout, &placement, &deployment, &crashy)
        .expect("survivors must finish the run");
    let r = &out.report.recovery;
    let local = out.report.cluster("local").expect("local cluster");
    println!(
        "  completed: {} slaves killed, {} leases reclaimed, local stole {} jobs",
        r.slaves_killed, r.jobs_reenqueued, local.jobs_stolen
    );

    // The recovery model's guarantee: every schedule yields the same answer.
    let survived = out.result.into_sorted();
    assert_eq!(reference, survived, "crash recovery changed the result");
    if let Some(a1) = act1 {
        assert_eq!(reference, a1, "re-enqueue recovery changed the result");
    }
    println!("  result identical to the failure-free runs — exactly-once held.\n");

    for (qi, result) in reference.into_iter().enumerate() {
        let (d2, id) = result[0];
        println!("query {qi}: nearest id {id} at distance² {d2:.6}");
    }
}
