//! PageRank with cloud bursting — the paper's large-reduction-object
//! application. The rank accumulator is proportional to the page set, so
//! the global reduction (shipping reduction objects between clusters)
//! becomes the interesting cost — exactly the effect the paper measures in
//! Table II.
//!
//! ```text
//! cargo run -p cb-apps --release --example pagerank
//! ```

use cb_apps::gen::GraphSpec;
use cb_apps::pagerank::{next_ranks, rank_delta, PageRankApp, RankParams};
use cb_apps::scenario::{build_hybrid, HybridOpts, ThrottleOpts};
use cloudburst_core::config::RuntimeConfig;
use cloudburst_core::runtime::run;
use std::sync::Arc;

fn main() {
    let spec = GraphSpec {
        n_pages: 20_000,
        n_files: 8,
        edges_per_file: 100_000,
        edges_per_chunk: 12_500,
        seed: 7,
    };
    let layout = spec.layout();
    println!(
        "graph: {} pages, {} edges, {} files, {} jobs",
        spec.n_pages,
        spec.n_edges(),
        layout.files.len(),
        layout.n_jobs()
    );

    let app = PageRankApp::new(spec.n_pages);
    let out_degree = Arc::new(spec.out_degrees(&layout));

    // Data mostly in the cloud, throttled fabric: the reduction object's
    // WAN trip shows up in the global-reduction time.
    let env = build_hybrid(
        layout,
        spec.fill(),
        HybridOpts {
            frac_local: 0.33,
            local_cores: 3,
            cloud_cores: 3,
            throttle: Some(ThrottleOpts::scaled_default()),
        },
    )
    .expect("environment");

    let mut params = RankParams::uniform(out_degree);
    println!("\npass  delta(L1)     total(s)  global-red(s)  robj(MB)");
    for pass in 1..=10 {
        let out = run(
            &app,
            &params,
            &env.layout,
            &env.placement,
            &env.deployment,
            &RuntimeConfig::default(),
        )
        .expect("run");
        let ranks = next_ranks(&out.result, &params);
        let delta = rank_delta(&ranks, &params.ranks);
        println!(
            "{pass:>4}  {delta:<12.6e}  {:>7.3}  {:>13.3}  {:>8.2}",
            out.report.total_s,
            out.report.global_reduction_s,
            out.report.robj_bytes as f64 / 1e6,
        );
        params = RankParams {
            ranks: Arc::new(ranks),
            out_degree: Arc::clone(&params.out_degree),
        };
        if delta < 1e-6 {
            println!("converged after {pass} passes");
            break;
        }
    }

    // Top pages. (The generator skews *out*-degree, not in-degree, so
    // ranks are fairly flat — the interesting output of this example is the
    // cost table above, not the ranking itself.)
    let mut indexed: Vec<(usize, f64)> = params.ranks.iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop 10 pages by rank:");
    for (page, rank) in indexed.iter().take(10) {
        println!("  page {page:>6}  rank {rank:.6}");
    }
    let mass: f64 = params.ranks.iter().sum();
    println!("total rank mass: {mass:.9} (must be 1)");
}
