//! Distributed wordcount over real TCP, checked against the in-process run.
//!
//! Spawns the three roles of the paper's architecture as independent actors
//! connected only by localhost sockets — one head (global job pool + global
//! reduction) and two workers (a "local" and a "cloud" cluster) — then runs
//! the identical workload through the single-process runtime and diffs the
//! canonical bytes of the two final reduction objects. They must be
//! identical: the wire is an implementation detail, not a semantics change.
//!
//! ```sh
//! cargo run --release --example distributed
//! ```
//!
//! For actual separate OS processes, see `scripts/run_distributed.sh`,
//! which drives `cloudburst head` / `cloudburst worker`.

use cb_apps::gen::WordsSpec;
use cb_apps::scenario::{build_hybrid, HybridOpts};
use cb_apps::wordcount::WordCountApp;
use cb_net::{fingerprint, run_worker, serve_head, NetConfig, RobjCodec, WorkerSpec};
use cloudburst_core::combine::KeyedSum;
use cloudburst_core::config::RuntimeConfig;
use cloudburst_core::runtime::run;
use std::net::TcpListener;

fn main() {
    let spec = WordsSpec {
        vocabulary: 500,
        n_files: 4,
        words_per_file: 6_000,
        words_per_chunk: 1_000,
        seed: 42,
    };
    let env = build_hybrid(
        spec.layout(),
        spec.fill(),
        HybridOpts {
            frac_local: 0.5,
            local_cores: 2,
            cloud_cores: 2,
            throttle: None,
        },
    )
    .expect("build env");
    let cfg = RuntimeConfig::default();

    // Reference: the whole thing in one process (the loopback special case).
    let single = run(
        &WordCountApp,
        &(),
        &env.layout,
        &env.placement,
        &env.deployment,
        &cfg,
    )
    .expect("single-process run");
    let single_bytes = single.result.encode_robj();

    // Distributed: one head + two workers over 127.0.0.1.
    let net = NetConfig::default();
    let fp = fingerprint(&env.layout, &env.placement, "wordcount");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    println!("head listening on {addr}");

    let distributed = std::thread::scope(|scope| {
        for (ci, cluster) in env.deployment.clusters.iter().enumerate() {
            let (net, fabric) = (&net, &env.deployment.fabric);
            let (layout, placement, cfg) = (&env.layout, &env.placement, &cfg);
            scope.spawn(move || {
                let spec = WorkerSpec {
                    cluster: ci as u32,
                    name: cluster.name.clone(),
                    app_tag: "wordcount".into(),
                    fingerprint: fp,
                };
                let out = run_worker(
                    &WordCountApp,
                    &(),
                    layout,
                    placement,
                    fabric,
                    cluster,
                    &spec,
                    cfg,
                    net,
                    addr,
                )
                .expect("worker run");
                println!(
                    "worker {} shipped {} robj bytes ({} jobs)",
                    cluster.name,
                    out.robj_bytes,
                    out.outcome.stats.iter().map(|s| s.jobs).sum::<u64>()
                );
            });
        }
        serve_head::<KeyedSum>(
            &listener,
            env.deployment.clusters.len(),
            &env.layout,
            &env.placement,
            &cfg,
            &net,
            fp,
            "wordcount",
        )
        .expect("head run")
    });

    let distributed_bytes = distributed.result.encode_robj();
    println!(
        "single-process: {} distinct words, {} robj bytes",
        single.result.len(),
        single_bytes.len()
    );
    println!(
        "distributed:    {} distinct words, {} robj bytes, {} frames exchanged",
        distributed.result.len(),
        distributed_bytes.len(),
        distributed.report.net.frames_sent + distributed.report.net.frames_recv
    );
    let identical = single_bytes == distributed_bytes;
    println!("identical: {identical}");
    if !identical {
        std::process::exit(1);
    }
}
