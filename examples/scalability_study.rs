//! Scalability study — the Fig. 4 experiment, both ways:
//!
//! 1. **Real runtime** at laptop scale: double the cores of a throttled
//!    hybrid deployment and watch wall time fall.
//! 2. **Discrete-event simulator** at full paper scale (120 GB, up to
//!    32+32 cores): the per-doubling speedups of all three applications.
//!
//! ```text
//! cargo run -p cb-apps --release --example scalability_study
//! ```

use cb_apps::gen::{PointMode, PointsSpec};
use cb_apps::knn::{KnnApp, KnnQuery};
use cb_apps::scenario::{build_hybrid, HybridOpts, ThrottleOpts};
use cb_sim::calib::{App, NetConstants};
use cb_sim::experiments::{run_fig4, DEFAULT_SEED};
use cloudburst_core::config::RuntimeConfig;
use cloudburst_core::runtime::run;

fn main() {
    real_runtime_sweep();
    simulated_paper_scale_sweep();
}

/// Part 1: a real knn workload, all data "in S3", cores swept 1+1 → 4+4.
fn real_runtime_sweep() {
    println!("== real runtime: knn, all data in simulated S3 ==");
    println!("cores(local,EC2)  total(s)  speedup vs previous");
    let spec = PointsSpec {
        n_files: 8,
        points_per_file: 30_000,
        points_per_chunk: 3_750,
        dim: 4,
        seed: 11,
        mode: PointMode::Uniform,
    };
    let app = KnnApp::new(spec.dim, 10);
    let query = KnnQuery {
        query: vec![0.5; spec.dim],
    };

    let mut prev: Option<f64> = None;
    for m in [1usize, 2, 4] {
        let env = build_hybrid(
            spec.layout(),
            spec.fill(),
            HybridOpts {
                frac_local: 0.0,
                local_cores: m,
                cloud_cores: m,
                throttle: Some(ThrottleOpts::scaled_default()),
            },
        )
        .expect("environment");
        let out = run(
            &app,
            &query,
            &env.layout,
            &env.placement,
            &env.deployment,
            &RuntimeConfig::default(),
        )
        .expect("run");
        let speedup = prev
            .map(|p| format!("{:+.1}%", (p / out.report.total_s - 1.0) * 100.0))
            .unwrap_or_else(|| "-".into());
        println!(
            "({m:>2},{m:<2})           {:>7.3}  {speedup}",
            out.report.total_s
        );
        prev = Some(out.report.total_s);
    }
}

/// Part 2: the paper-scale sweep on the calibrated simulator.
fn simulated_paper_scale_sweep() {
    let net = NetConstants::default();
    println!("\n== simulated at paper scale (120 GB, all data in S3) ==");
    for app in App::ALL {
        println!("\n{} :", app.name());
        println!("  cores     total(s)   speedup/doubling");
        for row in run_fig4(app, &net, DEFAULT_SEED) {
            println!(
                "  ({m:>2},{m:<2})  {:>10.1}   {}",
                row.report.total_s,
                row.speedup_pct
                    .map(|s| format!("{s:.1}%"))
                    .unwrap_or_else(|| "-".into()),
                m = row.cores_each,
            );
        }
    }
    println!(
        "\npaper reports 73–89% per doubling (avg 81%); pagerank scales worst \
         because its ~300 MB reduction object is a fixed cost."
    );
}
