//! Iterative k-means clustering with cloud bursting — the paper's
//! compute-bound application. Each pass is one framework run; the driver
//! recomputes centroids between passes and stops at convergence.
//!
//! ```text
//! cargo run -p cb-apps --release --example kmeans_clustering
//! ```

use cb_apps::gen::{PointMode, PointsSpec};
use cb_apps::kmeans::{centroid_shift, next_centroids, Centroids, KMeansApp};
use cb_apps::scenario::{build_hybrid, HybridOpts};
use cloudburst_core::config::RuntimeConfig;
use cloudburst_core::runtime::run;

fn main() {
    const K: usize = 4;
    let spec = PointsSpec {
        n_files: 8,
        points_per_file: 25_000,
        points_per_chunk: 2_500,
        dim: 3,
        seed: 42,
        mode: PointMode::Blobs {
            centers: K,
            spread: 0.3,
        },
    };
    let app = KMeansApp::new(spec.dim, K);

    // Data skewed toward the cloud (33/67), compute split evenly — the
    // paper's env-33/67.
    let env = build_hybrid(
        spec.layout(),
        spec.fill(),
        HybridOpts {
            frac_local: 0.33,
            local_cores: 3,
            cloud_cores: 3,
            throttle: None,
        },
    )
    .expect("environment");

    // Start from perturbed blob centers.
    let mut params = Centroids::new(
        spec.dim,
        (0..K)
            .flat_map(|c| {
                PointsSpec::blob_center(spec.seed, c, spec.dim)
                    .into_iter()
                    .map(|x| x + 1.5)
            })
            .collect(),
    );

    println!("iter  shift          time(s)  jobs(local/EC2)  stolen");
    for iter in 1..=20 {
        let out = run(
            &app,
            &params,
            &env.layout,
            &env.placement,
            &env.deployment,
            &RuntimeConfig::default(),
        )
        .expect("run");
        let next = next_centroids(&app, &out.result, &params);
        let shift = centroid_shift(&params, &next);
        let local = out.report.cluster("local").unwrap();
        let ec2 = out.report.cluster("EC2").unwrap();
        println!(
            "{iter:>4}  {shift:<13.6e}  {:>7.3}  {:>7}/{:<7}  {:>6}",
            out.report.total_s,
            local.jobs_processed,
            ec2.jobs_processed,
            out.report.total_stolen(),
        );
        params = next;
        if shift < 1e-9 {
            println!("converged after {iter} iterations");
            break;
        }
    }

    println!("\nfinal centroids vs generating blob centers:");
    for c in 0..K {
        let got = params.centroid(c);
        // Match each centroid to its closest generating center.
        let (best, dist) = (0..K)
            .map(|b| {
                let center = PointsSpec::blob_center(spec.seed, b, spec.dim);
                let d: f64 = got
                    .iter()
                    .zip(&center)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt();
                (b, d)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        println!(
            "  centroid {c}: {:?} -> blob {best} (off by {dist:.4})",
            got.iter()
                .map(|x| (x * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }
}
