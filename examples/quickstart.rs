//! Quickstart: define a generalized-reduction application in ~30 lines and
//! run it across a hybrid (local + cloud) deployment.
//!
//! ```text
//! cargo run -p cb-apps --example quickstart
//! ```
//!
//! The app computes the mean and extrema of a dataset of `f64` readings that
//! is split between a "local" store and a simulated S3 — the framework
//! handles placement, scheduling, remote retrieval, and the global reduction.

use cb_apps::scenario::{build_hybrid, HybridOpts};
use cb_storage::layout::ChunkMeta;
use cb_storage::organizer::organize_even;
use cloudburst_core::api::{GRApp, ReductionObject};
use cloudburst_core::config::RuntimeConfig;
use cloudburst_core::runtime::run;

/// The reduction object: enough state to answer mean/min/max at the end.
#[derive(Debug, Clone)]
struct Stats {
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Stats {
    fn empty() -> Self {
        Stats {
            n: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl ReductionObject for Stats {
    fn merge(&mut self, other: Self) {
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
    fn size_bytes(&self) -> usize {
        32
    }
}

/// The application: units are little-endian `f64` readings.
struct MeanApp;

impl GRApp for MeanApp {
    type Unit = f64;
    type RObj = Stats;
    type Params = ();

    fn decode_chunk(&self, meta: &ChunkMeta, bytes: &[u8]) -> Vec<f64> {
        assert_eq!(bytes.len() as u64, meta.len);
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    fn init(&self, _: &()) -> Stats {
        Stats::empty()
    }

    fn local_reduce(&self, _: &(), robj: &mut Stats, unit: &f64) {
        robj.n += 1;
        robj.sum += unit;
        robj.min = robj.min.min(*unit);
        robj.max = robj.max.max(*unit);
    }
}

fn main() {
    // A dataset of 8 files × 64 KiB of f64 readings, organized into
    // 8 KiB chunks (the unit of job assignment).
    let layout = organize_even(8, 64 * 1024, 8 * 1024, 8).unwrap();

    // Fill each chunk with a deterministic ramp so the answer is checkable.
    let fill = |chunk: &ChunkMeta, buf: &mut [u8]| {
        for (i, rec) in buf.chunks_exact_mut(8).enumerate() {
            let x = (chunk.id.0 as f64) * 1000.0 + i as f64;
            rec.copy_from_slice(&x.to_le_bytes());
        }
    };

    // Half the files live locally, half in the (simulated) cloud; a 2-core
    // local cluster and a 2-core cloud cluster process everything.
    let env = build_hybrid(
        layout,
        fill,
        HybridOpts {
            frac_local: 0.5,
            local_cores: 2,
            cloud_cores: 2,
            throttle: None,
        },
    )
    .expect("environment construction");

    let out = run(
        &MeanApp,
        &(),
        &env.layout,
        &env.placement,
        &env.deployment,
        &RuntimeConfig::default(),
    )
    .expect("run");

    let s = &out.result;
    println!(
        "processed {} readings across {} clusters",
        s.n,
        out.report.clusters.len()
    );
    println!(
        "mean = {:.3}   min = {:.1}   max = {:.1}",
        s.sum / s.n as f64,
        s.min,
        s.max
    );
    println!("\nrun report:\n{}", out.report.render());

    assert_eq!(s.n, env.layout.total_units());
    assert_eq!(s.min, 0.0);
}
